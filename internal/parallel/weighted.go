// weighted.go: G-way parallel WEIGHTED samplers — the Efraimidis–Spirakis
// substrates of internal/weighted behind the same round-robin dealing
// machinery as the uniform sharded samplers, composed across shards by
// weight instead of by count.
//
// The dealing argument carries over unchanged (each shard's active window
// is exactly its slice of the global window), but the cross-shard
// composition splits by sampling mode:
//
//   - WITHOUT replacement composes EXACTLY. An Efraimidis–Spirakis log-key
//     is globally comparable — every element draws ln(U)/w independently,
//     no matter which shard keyed it — and the global weighted k-sample is
//     the key-top-k of the window. Each shard retains (at least) the top-k
//     of its own slice, so the top-k of the UNION of the per-shard samples
//     IS the global top-k: the merged sample follows the exact weighted
//     WOR law, with no cross-shard estimate involved. Only estimator scale
//     factors (weight totals, window sizes) carry an ε.
//
//   - WITH replacement needs per-shard active WEIGHT totals: slot j picks
//     a shard with probability W_shard/W and takes the shard's exact slot
//     draw, so each element lands with probability (W_shard/W)·(w/W_shard)
//     = w/W. Unlike counts — which round-robin dealing derives
//     arithmetically from one global estimate — weight totals are
//     per-shard quantities, and tracking them exactly is as impossible as
//     exact window counting. The dispatcher therefore keeps one
//     exponential histogram over WEIGHTS per shard (ehist.Weighted, the
//     sum analogue of the count estimator), updated as elements are dealt,
//     and the cross-shard pick is (1±ε)-correct.
//
// Sequence windows reuse the identical machinery by clocking the weight
// oracles on the ARRIVAL INDEX: a window of the last n elements is a
// "timestamp" window of horizon n over global indices, and n divisible by
// G puts exactly n/G active elements on every shard — each shard's last
// n/G arrivals, which is precisely what the shard-local samplers cover.
//
// The per-shard weight oracles double as the estimator layer's scale
// factors: TotalWeightAt sums them into a (1±ε) active-weight total
// (apps.ShardedSubsetSumTS reads it directly), and the timestamp samplers
// keep the usual global size oracle (SizeAt) alongside.
package parallel

import (
	"sort"

	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// wdispatch is the shared state of the sharded weighted samplers: the
// weight-aware dispatcher, the per-shard exponential histograms over
// weights, and (timestamp windows) the global active-count oracle.
type wdispatch[T any] struct {
	d      *dispatcher[T]
	g      int
	k      int
	t0     int64 // horizon: clock ticks (timestamp) or the window size n (sequence)
	seq    bool  // sequence window: the oracle clock is the arrival index
	rng    *xrand.Rand
	weight func(T) float64
	wests  []*ehist.Weighted
	size   *ehist.Counter // timestamp windows only: global n(t) oracle
	now    int64
	begun  bool
	// wscratch carries the batch's precomputed weights into the dealing
	// (released under the stream.MaxRecycledCap discipline) and stays
	// uncounted as recycled transport; wcache is the per-shard weight
	// cache keyed on (dispatch count, query time), the float analogue of
	// tsDispatch's sizes cache — it persists between queries, so Words()
	// counts its len(wcache) = G words (DESIGN.md §6).
	wscratch    []float64 //swlint:allow wordsacct recycled dealing transport under stream.MaxRecycledCap
	wcache      []float64
	wcacheTotal float64
	wcacheCount uint64
	wcacheNow   int64
	wcacheOK    bool
}

func newWDispatch[T any](rng *xrand.Rand, horizon int64, g, k int, eps float64, seq bool, weight func(T) float64, shards []stream.WeightedSampler[T]) *wdispatch[T] {
	w := &wdispatch[T]{
		d:      newWeightedDispatcher(shards),
		g:      g,
		k:      k,
		t0:     horizon,
		seq:    seq,
		rng:    rng.Split(),
		weight: weight,
		wests:  make([]*ehist.Weighted, g),
	}
	for i := range w.wests {
		w.wests[i] = ehist.NewWeighted(horizon, eps)
	}
	if !seq {
		w.size = ehist.NewEps(horizon, eps)
	}
	return w
}

func validateWeightedShardParams(name string, horizon int64, g, k int, eps float64, weightNil bool) {
	if horizon <= 0 {
		panic("parallel: " + name + " with window parameter <= 0")
	}
	if g <= 0 {
		panic("parallel: " + name + " with g <= 0")
	}
	if k <= 0 {
		panic("parallel: " + name + " with k <= 0")
	}
	if eps <= 0 || eps >= 1 {
		panic("parallel: " + name + " with eps outside (0,1)")
	}
	if weightNil {
		panic("parallel: " + name + " with nil weight function")
	}
}

// observe computes the element's weight ONCE, feeds the dispatcher-side
// oracles of the shard the element is about to land on, and deals it with
// the weight attached (the shard sampler reuses it instead of re-deriving).
func (w *wdispatch[T]) observe(value T, ts int64) {
	w.observeWeighted(value, w.weight(value), ts)
}

// observeWeighted is the precomputed-weight ingest core: callers that
// already hold the element's weight — the serving layer's HTTP ingest, an
// upstream pipeline stage — skip the weight function entirely; the oracles
// and the dealing see exactly what the derived path would have produced.
func (w *wdispatch[T]) observeWeighted(value T, wt float64, ts int64) {
	// Check BEFORE the oracle updates: a closed-dispatcher panic must not
	// leave the weight histograms counting an element that was never dealt.
	w.d.requireOpen()
	if w.seq {
		w.wests[w.d.next].Observe(int64(w.d.count), wt)
	} else {
		w.size.Observe(ts)
		w.wests[w.d.next].Observe(ts, wt)
		w.now = ts
		w.begun = true
	}
	w.d.observeWeighted(value, wt, ts)
}

// observeBatch computes the batch's weights into the reused scratch and
// forwards through the precomputed-weight batch path.
func (w *wdispatch[T]) observeBatch(batch []stream.Element[T]) {
	if len(batch) == 0 {
		return
	}
	ws := w.wscratch[:0]
	if cap(ws) < len(batch) {
		ws = make([]float64, 0, len(batch))
	}
	for _, e := range batch {
		ws = append(ws, w.weight(e.Value))
	}
	w.observeWeightedBatch(batch, ws)
	// The dealing copied the weights into per-shard slices synchronously,
	// so the scratch is immediately reusable; oversized growth is dropped.
	if cap(ws) > stream.MaxRecycledCap {
		w.wscratch = nil
	} else {
		w.wscratch = ws[:0]
	}
}

// observeWeightedBatch updates the per-shard oracles in dealing order and
// forwards elements and precomputed weights through the weight-aware batch
// dealing; weights[i] belongs to batch[i]. The dealing copies both halves
// into per-shard slices synchronously, so the caller's slices are reusable
// on return.
func (w *wdispatch[T]) observeWeightedBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) != len(weights) {
		panic("parallel: ObserveWeightedBatch with mismatched batch and weight lengths")
	}
	if len(batch) == 0 {
		return
	}
	// As in observeWeighted: refuse before the oracles see the batch.
	w.d.requireOpen()
	shard := w.d.next
	clock := int64(w.d.count)
	for i, e := range batch {
		wt := weights[i]
		if w.seq {
			w.wests[shard].Observe(clock, wt)
			clock++
		} else {
			w.size.Observe(e.TS)
			w.wests[shard].Observe(e.TS, wt)
		}
		shard = (shard + 1) % w.g
	}
	if !w.seq {
		w.now = batch[len(batch)-1].TS
		w.begun = true
	}
	w.d.observeWeightedBatch(batch, weights)
}

// clock returns the oracle clock for a query: the query time clamped to
// the dispatcher's monotone arrival clock (timestamp windows), or the
// latest dealt arrival index (sequence windows).
func (w *wdispatch[T]) clock(now int64) int64 {
	if w.seq {
		return int64(w.d.count) - 1
	}
	if w.begun && now < w.now {
		return w.now
	}
	return now
}

// shardWeights returns the (1±ε) per-shard active-weight estimates at the
// oracle clock `now` and their total, cached per (dispatch count, query
// time) in a reused scratch slice — the weight analogue of
// tsDispatch.weights. Callers mutate the slice only through dropShard.
//
// The per-shard SumAt scans fan across the forShards pool — each histogram
// is shard-local and its queries are read-only (PR 3), so the scans are
// independent — while the total is summed sequentially in shard index
// order, keeping the float accumulation order (hence the cached total, and
// every WR pick derived from it) independent of the fan-out schedule.
func (w *wdispatch[T]) shardWeights(now int64) ([]float64, float64) {
	if w.wcacheOK && w.wcacheCount == w.d.count && w.wcacheNow == now {
		return w.wcache, w.wcacheTotal
	}
	if w.wcache == nil {
		w.wcache = make([]float64, w.g)
	}
	forShards(w.g, func(i int) {
		w.wcache[i] = w.wests[i].SumAt(now)
	})
	total := 0.0
	for _, s := range w.wcache {
		total += s
	}
	w.wcacheCount, w.wcacheNow, w.wcacheTotal, w.wcacheOK = w.d.count, now, total, true
	return w.wcache, total
}

// dropShard zeroes a shard's cached weight after a query discovered it
// empty (possible only within the eps error band) and returns the updated
// total, written through to the cache like tsDispatch.dropShard.
func (w *wdispatch[T]) dropShard(shard int) float64 {
	w.wcacheTotal -= w.wcache[shard]
	w.wcache[shard] = 0
	return w.wcacheTotal
}

// totalWeight is the (1±ε) active-weight oracle at the query clock — the
// estimator layer's scale factor, summed from the per-shard histograms.
func (w *wdispatch[T]) totalWeight(now int64) float64 {
	_, total := w.shardWeights(w.clock(now))
	return total
}

func (w *wdispatch[T]) words(peak bool) int {
	// Shards + per-shard weight estimators + the persistent weight cache
	// (G words once warmed; wscratch is recycled transport, uncounted).
	n := w.d.shardWords(peak) + len(w.wcache)
	for _, est := range w.wests {
		if peak {
			n += est.MaxWords()
		} else {
			n += est.Words()
		}
	}
	if w.size != nil {
		n++ // the clock scalar
		if peak {
			n += w.size.MaxWords()
		} else {
			n += w.size.Words()
		}
	}
	return n
}

// drawSlots is the shared with-replacement query core: k slot picks over
// the cached shard weights at the oracle clock `now`. Every shard's full
// slot vector is fetched exactly once, fanned across the forShards pool
// (the weighted samplers draw only at observe time, so shard queries are
// draw-free and fetch order cannot matter); global slot j reads entry j of
// its chosen shard's vector. Shards whose weight estimate is positive but
// which turn out empty (possible only within the eps error band) have
// their weights dropped in shard index order before any slot pick — the
// float subtraction order is fixed, so the refined total is independent of
// the fan-out schedule. When every weighted shard is empty a linear scan
// finds any live one, so a non-empty window never fails.
func (w *wdispatch[T]) drawSlots(now int64, fetchShard func(shard int) ([]weighted.Item[T], bool)) ([]weighted.Item[T], bool) {
	ws, total := w.shardWeights(now)
	cache := make([][]weighted.Item[T], w.g)
	forShards(w.g, func(shard int) {
		if items, ok := fetchShard(shard); ok {
			cache[shard] = items
		}
	})
	for shard := range cache {
		if len(cache[shard]) == 0 && ws[shard] > 0 {
			total = w.dropShard(shard)
		}
	}
	out := make([]weighted.Item[T], 0, w.k)
	for slot := 0; slot < w.k; slot++ {
		shard := pickShard(w.rng, ws, total)
		if shard < 0 {
			// The estimate put all weight on empty shards; fall back to any
			// live one.
			for shard = 0; shard < w.g; shard++ {
				if len(cache[shard]) > 0 {
					break
				}
			}
			if shard == w.g {
				return nil, false
			}
		}
		it := cache[shard][slot]
		it.Elem = recoverIndex(it.Elem, shard, w.g)
		out = append(out, it)
	}
	return out, true
}

// pickShard draws a shard proportionally to the cached per-shard weights.
// Zero-weight shards are skipped; floating-point slack that consumes every
// positive weight lands on the last positive one. Returns -1 when no
// positive weight remains.
func pickShard(rng *xrand.Rand, weights []float64, total float64) int {
	if !(total > 0) {
		return -1
	}
	u := rng.Float64() * total
	last := -1
	for j, wj := range weights {
		if wj <= 0 {
			continue
		}
		if u < wj {
			return j
		}
		u -= wj
		last = j
	}
	return last
}

// mergeShardItems fans fetchShard across the forShards pool — one
// shard-local, draw-free skyband query per shard, each writing its own
// result slot — and concatenates the results in shard index order with
// global indices recovered. The concatenation order fixes the mergeTopK
// sort input, so the merged sample is byte-identical whatever the fan-out.
func mergeShardItems[T any](w *wdispatch[T], fetchShard func(shard int) ([]weighted.Item[T], bool)) []weighted.Item[T] {
	perShard := make([][]weighted.Item[T], w.g)
	forShards(w.g, func(shard int) {
		if items, ok := fetchShard(shard); ok {
			perShard[shard] = items
		}
	})
	var all []weighted.Item[T]
	for shard, items := range perShard {
		for _, it := range items {
			it.Elem = recoverIndex(it.Elem, shard, w.g)
			all = append(all, it)
		}
	}
	return all
}

// mergeTopK sorts merged per-shard items by decreasing log-key — the
// Efraimidis–Spirakis successive-sampling order — and keeps the global
// top-k: the exact weighted WOR sample of the union.
func mergeTopK[T any](all []weighted.Item[T], k int) []weighted.Item[T] {
	sort.Slice(all, func(a, b int) bool { return all[a].LogKey > all[b].LogKey })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// itemsToElements strips Items to the bare-element Sample shape.
func itemsToElements[T any](items []weighted.Item[T], ok bool) ([]stream.Element[T], bool) {
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(items))
	for i, it := range items {
		out[i] = it.Elem
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Timestamp windows
// ---------------------------------------------------------------------------

// ShardedWeightedTSWOR is a G-way parallel weighted k-sample WITHOUT
// replacement over a timestamp window of horizon t0: per-shard
// weighted.TSWOR skybands whose globally comparable log-keys merge into
// the exact Efraimidis–Spirakis top-k at query time. eps is the relative
// error of the embedded weight/size oracles — the SAMPLE itself is exact.
type ShardedWeightedTSWOR[T any] struct {
	w      *wdispatch[T]
	shards []*weighted.TSWOR[T] //swlint:allow wordsacct duplicate typed view of w.d.shards, counted via shardWords
}

// NewShardedWeightedTSWOR builds the sampler and starts its shard workers.
func NewShardedWeightedTSWOR[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64, weight func(T) float64) *ShardedWeightedTSWOR[T] {
	validateWeightedShardParams("NewShardedWeightedTSWOR", t0, g, k, eps, weight == nil)
	s := &ShardedWeightedTSWOR[T]{shards: make([]*weighted.TSWOR[T], g)}
	shards := make([]stream.WeightedSampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = weighted.NewTSWOR[T](rng.Split(), t0, k, eps, weight)
		shards[i] = s.shards[i]
	}
	s.w = newWDispatch(rng, t0, g, k, eps, false, weight, shards)
	return s
}

// Observe routes the next element to its shard (non-decreasing timestamps;
// single producer goroutine).
func (s *ShardedWeightedTSWOR[T]) Observe(value T, ts int64) { s.w.observe(value, ts) }

// ObserveBatch deals a batch across the shards, weights attached.
func (s *ShardedWeightedTSWOR[T]) ObserveBatch(batch []stream.Element[T]) { s.w.observeBatch(batch) }

// ObserveWeighted implements stream.WeightedSampler: feeds one element
// whose weight was already computed upstream (the serving layer's ingest),
// skipping the weight function while leaving oracles and dealing identical.
func (s *ShardedWeightedTSWOR[T]) ObserveWeighted(value T, wt float64, ts int64) {
	s.w.observeWeighted(value, wt, ts)
}

// ObserveWeightedBatch deals a batch with precomputed weights; weights[i]
// belongs to batch[i]. Panics when the slices have different lengths.
func (s *ShardedWeightedTSWOR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	s.w.observeWeightedBatch(batch, weights)
}

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedWeightedTSWOR[T]) Barrier() { s.w.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedWeightedTSWOR[T]) Close() { s.w.d.close() }

// ItemsAt returns the weighted sample over the elements active at time now
// — the min(k, n(t)) active elements with the largest keys across ALL
// shards, in decreasing key order, following the exact weighted WOR law
// (each shard retains its slice's suffix-top-k, so the union's top-k is
// the window's). Panics without a Barrier.
//
// The per-shard skyband queries fan across the forShards pool into
// per-shard result slots; the merge input is then concatenated in shard
// index order on the calling goroutine, so the sort sees the same sequence
// regardless of the fan-out schedule (ties included).
func (s *ShardedWeightedTSWOR[T]) ItemsAt(now int64) ([]weighted.Item[T], bool) {
	s.w.d.requireSynced()
	now = s.w.clock(now)
	all := mergeShardItems(s.w, func(shard int) ([]weighted.Item[T], bool) {
		return s.shards[shard].ItemsAt(now)
	})
	if len(all) == 0 {
		return nil, false
	}
	return mergeTopK(all, s.w.k), true
}

// Items returns the sample at the latest dispatched timestamp.
func (s *ShardedWeightedTSWOR[T]) Items() ([]weighted.Item[T], bool) {
	if !s.w.begun {
		return nil, false
	}
	return s.ItemsAt(s.w.now)
}

// SampleAt implements stream.TimedSampler.
func (s *ShardedWeightedTSWOR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	return itemsToElements(s.ItemsAt(now))
}

// Sample implements stream.Sampler: the sample at the latest dispatched
// timestamp.
func (s *ShardedWeightedTSWOR[T]) Sample() ([]stream.Element[T], bool) {
	return itemsToElements(s.Items())
}

// SizeAt returns the (1±eps) estimate of n(t) at time now, clamped to the
// arrival count. Read-only in the clock sense (dispatcher-side state; no
// Barrier needed), but producer-goroutine only like every method.
func (s *ShardedWeightedTSWOR[T]) SizeAt(now int64) uint64 {
	n := s.w.size.EstimateAt(now)
	if n > s.w.d.count {
		n = s.w.d.count
	}
	return n
}

// TotalWeightAt returns the (1±eps) estimate of the total active weight at
// time now — the per-shard weight oracles summed, the estimator layer's
// scale factor. Read-only in the clock sense; producer-goroutine only
// (the underlying cache is the dispatch's query scratch).
func (s *ShardedWeightedTSWOR[T]) TotalWeightAt(now int64) float64 { return s.w.totalWeight(now) }

// ShardWeightsAt returns a copy of the per-shard (1±eps) active-weight
// estimates at time now (diagnostics; experiment E19 checks each entry
// against its shard slice's ground-truth weight).
func (s *ShardedWeightedTSWOR[T]) ShardWeightsAt(now int64) []float64 {
	ws, _ := s.w.shardWeights(s.w.clock(now))
	return append([]float64(nil), ws...)
}

// K returns the target sample size; G the shard count; Horizon t0; Count
// the number of elements dispatched.
func (s *ShardedWeightedTSWOR[T]) K() int         { return s.w.k }
func (s *ShardedWeightedTSWOR[T]) G() int         { return s.w.g }
func (s *ShardedWeightedTSWOR[T]) Horizon() int64 { return s.w.t0 }
func (s *ShardedWeightedTSWOR[T]) Count() uint64  { return s.w.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedWeightedTSWOR[T]) Words() int    { return s.w.words(false) }
func (s *ShardedWeightedTSWOR[T]) MaxWords() int { return s.w.words(true) }

// ShardedWeightedTSWR is a G-way parallel weighted sampler WITH
// replacement over a timestamp window of horizon t0: slot j picks a shard
// proportionally to its (1±eps) active-weight total — the per-shard
// exponential histograms over weights — and takes the shard's exact slot
// draw, so each active element is returned with probability (1±O(eps))·w/W.
type ShardedWeightedTSWR[T any] struct {
	w      *wdispatch[T]
	shards []*weighted.TSWR[T] //swlint:allow wordsacct duplicate typed view of w.d.shards, counted via shardWords
}

// NewShardedWeightedTSWR builds the sampler and starts its shard workers.
func NewShardedWeightedTSWR[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64, weight func(T) float64) *ShardedWeightedTSWR[T] {
	validateWeightedShardParams("NewShardedWeightedTSWR", t0, g, k, eps, weight == nil)
	s := &ShardedWeightedTSWR[T]{shards: make([]*weighted.TSWR[T], g)}
	shards := make([]stream.WeightedSampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = weighted.NewTSWR[T](rng.Split(), t0, k, eps, weight)
		shards[i] = s.shards[i]
	}
	s.w = newWDispatch(rng, t0, g, k, eps, false, weight, shards)
	return s
}

// Observe routes the next element to its shard.
func (s *ShardedWeightedTSWR[T]) Observe(value T, ts int64) { s.w.observe(value, ts) }

// ObserveBatch deals a batch across the shards, weights attached.
func (s *ShardedWeightedTSWR[T]) ObserveBatch(batch []stream.Element[T]) { s.w.observeBatch(batch) }

// ObserveWeighted implements stream.WeightedSampler (precomputed weight).
func (s *ShardedWeightedTSWR[T]) ObserveWeighted(value T, wt float64, ts int64) {
	s.w.observeWeighted(value, wt, ts)
}

// ObserveWeightedBatch deals a batch with precomputed weights.
func (s *ShardedWeightedTSWR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	s.w.observeWeightedBatch(batch, weights)
}

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedWeightedTSWR[T]) Barrier() { s.w.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedWeightedTSWR[T]) Close() { s.w.d.close() }

// ItemsAt returns k weighted draws with replacement over the elements
// active at time now — the shared drawSlots core over this sampler's
// per-shard slot vectors. Panics without a Barrier.
func (s *ShardedWeightedTSWR[T]) ItemsAt(now int64) ([]weighted.Item[T], bool) {
	s.w.d.requireSynced()
	now = s.w.clock(now)
	return s.w.drawSlots(now, func(shard int) ([]weighted.Item[T], bool) {
		return s.shards[shard].ItemsAt(now)
	})
}

// Items returns the draws at the latest dispatched timestamp.
func (s *ShardedWeightedTSWR[T]) Items() ([]weighted.Item[T], bool) {
	if !s.w.begun {
		return nil, false
	}
	return s.ItemsAt(s.w.now)
}

// SampleAt implements stream.TimedSampler.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedWeightedTSWR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	return itemsToElements(s.ItemsAt(now))
}

// Sample implements stream.Sampler.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedWeightedTSWR[T]) Sample() ([]stream.Element[T], bool) {
	return itemsToElements(s.Items())
}

// SizeAt returns the (1±eps) estimate of n(t) at time now, clamped to the
// arrival count. Read-only in the clock sense; producer-goroutine only.
func (s *ShardedWeightedTSWR[T]) SizeAt(now int64) uint64 {
	n := s.w.size.EstimateAt(now)
	if n > s.w.d.count {
		n = s.w.d.count
	}
	return n
}

// TotalWeightAt returns the (1±eps) active-weight total at time now
// (clock-read-only; producer-goroutine only).
func (s *ShardedWeightedTSWR[T]) TotalWeightAt(now int64) float64 { return s.w.totalWeight(now) }

// K returns the number of sample slots; G the shard count; Horizon t0;
// Count the number of elements dispatched.
func (s *ShardedWeightedTSWR[T]) K() int         { return s.w.k }
func (s *ShardedWeightedTSWR[T]) G() int         { return s.w.g }
func (s *ShardedWeightedTSWR[T]) Horizon() int64 { return s.w.t0 }
func (s *ShardedWeightedTSWR[T]) Count() uint64  { return s.w.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedWeightedTSWR[T]) Words() int    { return s.w.words(false) }
func (s *ShardedWeightedTSWR[T]) MaxWords() int { return s.w.words(true) }

// ---------------------------------------------------------------------------
// Sequence windows
// ---------------------------------------------------------------------------

// ShardedWeightedSeqWOR is a G-way parallel weighted k-sample WITHOUT
// replacement over a sequence window of n elements (n divisible by G).
// Composition is EXACT: the merged per-shard skybands' top-k by log-key is
// the window's Efraimidis–Spirakis k-sample — no estimate anywhere on the
// sample path.
type ShardedWeightedSeqWOR[T any] struct {
	w      *wdispatch[T]
	n      uint64
	shards []*weighted.WOR[T] //swlint:allow wordsacct duplicate typed view of w.d.shards, counted via shardWords
}

// NewShardedWeightedSeqWOR builds the sampler and starts its shard
// workers. n must be divisible by g.
func NewShardedWeightedSeqWOR[T any](rng *xrand.Rand, n uint64, g, k int, eps float64, weight func(T) float64) *ShardedWeightedSeqWOR[T] {
	validateWeightedShardParams("NewShardedWeightedSeqWOR", int64(n), g, k, eps, weight == nil)
	if n%uint64(g) != 0 {
		panic("parallel: window size must be a positive multiple of the shard count")
	}
	s := &ShardedWeightedSeqWOR[T]{n: n, shards: make([]*weighted.WOR[T], g)}
	shards := make([]stream.WeightedSampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = weighted.NewWOR[T](rng.Split(), n/uint64(g), k, weight)
		shards[i] = s.shards[i]
	}
	s.w = newWDispatch(rng, int64(n), g, k, eps, true, weight, shards)
	return s
}

// Observe routes the next element to its shard.
func (s *ShardedWeightedSeqWOR[T]) Observe(value T, ts int64) { s.w.observe(value, ts) }

// ObserveBatch deals a batch across the shards, weights attached.
func (s *ShardedWeightedSeqWOR[T]) ObserveBatch(batch []stream.Element[T]) { s.w.observeBatch(batch) }

// ObserveWeighted implements stream.WeightedSampler (precomputed weight).
func (s *ShardedWeightedSeqWOR[T]) ObserveWeighted(value T, wt float64, ts int64) {
	s.w.observeWeighted(value, wt, ts)
}

// ObserveWeightedBatch deals a batch with precomputed weights.
func (s *ShardedWeightedSeqWOR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	s.w.observeWeightedBatch(batch, weights)
}

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedWeightedSeqWOR[T]) Barrier() { s.w.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedWeightedSeqWOR[T]) Close() { s.w.d.close() }

// Items returns the weighted sample over the last min(count, n) elements —
// the exact merged top-k in decreasing key order. The per-shard skyband
// queries fan across the forShards pool; the merge input is concatenated
// in shard index order (see ShardedWeightedTSWOR.ItemsAt). Panics without
// a Barrier.
func (s *ShardedWeightedSeqWOR[T]) Items() ([]weighted.Item[T], bool) {
	s.w.d.requireSynced()
	all := mergeShardItems(s.w, func(shard int) ([]weighted.Item[T], bool) {
		return s.shards[shard].Items()
	})
	if len(all) == 0 {
		return nil, false
	}
	return mergeTopK(all, s.w.k), true
}

// Sample implements stream.Sampler.
func (s *ShardedWeightedSeqWOR[T]) Sample() ([]stream.Element[T], bool) {
	return itemsToElements(s.Items())
}

// TotalWeight returns the (1±eps) estimate of the window's total weight
// (per-shard weight oracles, clocked on the arrival index).
// Clock-read-only; producer-goroutine only.
func (s *ShardedWeightedSeqWOR[T]) TotalWeight() float64 { return s.w.totalWeight(0) }

// K returns the target sample size; G the shard count; N the window size;
// Count the number of elements dispatched.
func (s *ShardedWeightedSeqWOR[T]) K() int        { return s.w.k }
func (s *ShardedWeightedSeqWOR[T]) G() int        { return s.w.g }
func (s *ShardedWeightedSeqWOR[T]) N() uint64     { return s.n }
func (s *ShardedWeightedSeqWOR[T]) Count() uint64 { return s.w.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedWeightedSeqWOR[T]) Words() int    { return s.w.words(false) }
func (s *ShardedWeightedSeqWOR[T]) MaxWords() int { return s.w.words(true) }

// ShardedWeightedSeqWR is a G-way parallel weighted sampler WITH
// replacement over a sequence window of n elements: slot j picks a shard
// proportionally to its (1±eps) active-weight total (per-shard weight
// histograms clocked on the arrival index) and takes the shard's exact
// slot draw.
type ShardedWeightedSeqWR[T any] struct {
	w      *wdispatch[T]
	n      uint64
	shards []*weighted.WR[T] //swlint:allow wordsacct duplicate typed view of w.d.shards, counted via shardWords
}

// NewShardedWeightedSeqWR builds the sampler and starts its shard workers.
// n must be divisible by g.
func NewShardedWeightedSeqWR[T any](rng *xrand.Rand, n uint64, g, k int, eps float64, weight func(T) float64) *ShardedWeightedSeqWR[T] {
	validateWeightedShardParams("NewShardedWeightedSeqWR", int64(n), g, k, eps, weight == nil)
	if n%uint64(g) != 0 {
		panic("parallel: window size must be a positive multiple of the shard count")
	}
	s := &ShardedWeightedSeqWR[T]{n: n, shards: make([]*weighted.WR[T], g)}
	shards := make([]stream.WeightedSampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = weighted.NewWR[T](rng.Split(), n/uint64(g), k, weight)
		shards[i] = s.shards[i]
	}
	s.w = newWDispatch(rng, int64(n), g, k, eps, true, weight, shards)
	return s
}

// Observe routes the next element to its shard.
func (s *ShardedWeightedSeqWR[T]) Observe(value T, ts int64) { s.w.observe(value, ts) }

// ObserveBatch deals a batch across the shards, weights attached.
func (s *ShardedWeightedSeqWR[T]) ObserveBatch(batch []stream.Element[T]) { s.w.observeBatch(batch) }

// ObserveWeighted implements stream.WeightedSampler (precomputed weight).
func (s *ShardedWeightedSeqWR[T]) ObserveWeighted(value T, wt float64, ts int64) {
	s.w.observeWeighted(value, wt, ts)
}

// ObserveWeightedBatch deals a batch with precomputed weights.
func (s *ShardedWeightedSeqWR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	s.w.observeWeightedBatch(batch, weights)
}

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedWeightedSeqWR[T]) Barrier() { s.w.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedWeightedSeqWR[T]) Close() { s.w.d.close() }

// Items returns k weighted draws with replacement over the last
// min(count, n) elements — the shared drawSlots core; a shard that
// received no elements yet (warm-up with count < g) has its weight
// dropped and the slot redrawn. Panics without a Barrier.
func (s *ShardedWeightedSeqWR[T]) Items() ([]weighted.Item[T], bool) {
	s.w.d.requireSynced()
	if s.w.d.count == 0 {
		return nil, false
	}
	return s.w.drawSlots(s.w.clock(0), func(shard int) ([]weighted.Item[T], bool) {
		return s.shards[shard].Items()
	})
}

// Sample implements stream.Sampler.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedWeightedSeqWR[T]) Sample() ([]stream.Element[T], bool) {
	return itemsToElements(s.Items())
}

// TotalWeight returns the (1±eps) estimate of the window's total weight.
func (s *ShardedWeightedSeqWR[T]) TotalWeight() float64 { return s.w.totalWeight(0) }

// K returns the number of sample slots; G the shard count; N the window
// size; Count the number of elements dispatched.
func (s *ShardedWeightedSeqWR[T]) K() int        { return s.w.k }
func (s *ShardedWeightedSeqWR[T]) G() int        { return s.w.g }
func (s *ShardedWeightedSeqWR[T]) N() uint64     { return s.n }
func (s *ShardedWeightedSeqWR[T]) Count() uint64 { return s.w.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedWeightedSeqWR[T]) Words() int    { return s.w.words(false) }
func (s *ShardedWeightedSeqWR[T]) MaxWords() int { return s.w.words(true) }

// Compile-time conformance: the sharded weighted wrappers speak the same
// unified interface as every other substrate — including the
// precomputed-weight ingest the serving layer feeds.
var (
	_ stream.WeightedSampler[int] = (*ShardedWeightedSeqWOR[int])(nil)
	_ stream.WeightedSampler[int] = (*ShardedWeightedSeqWR[int])(nil)
	_ stream.WeightedSampler[int] = (*ShardedWeightedTSWOR[int])(nil)
	_ stream.WeightedSampler[int] = (*ShardedWeightedTSWR[int])(nil)
	_ stream.TimedSampler[int]    = (*ShardedWeightedTSWOR[int])(nil)
	_ stream.TimedSampler[int]    = (*ShardedWeightedTSWR[int])(nil)
)
