// snapshot.go: versioned checkpoint codecs for the sharded samplers.
//
// A sharded snapshot is taken AFTER an ingest barrier — Snapshot drains
// one itself, so the channels are empty, the workers are idle, and the
// shard samplers hold exactly the elements dispatched so far. What rides
// the wire is the persistent state only: the dealing cursor and arrival
// count, the dispatcher-side rng and oracles, and each shard sampler's
// body through its package's exported codec. Transport (channels, buffer
// generations, dirty flags) and the per-query weight caches are rebuilt
// empty/invalid on restore — the first query after a restore re-derives
// them, which is exactly what the first query after a barrier does.
//
// Restore constructs the dispatcher through the normal startDispatcher
// path (workers spawned, synced true) and then loads the persistent
// fields; no randomness is drawn anywhere on the restore path, because
// the snapshot carries every rng verbatim. Worker goroutines are spawned
// only after the whole body decoded cleanly, so a truncated or corrupt
// snapshot never leaks a dispatcher.
//
// Like every other method on these samplers, Snapshot belongs to the
// single producer goroutine.
package parallel

import (
	"io"

	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/snap"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
)

// Snapshot kind tags.
const (
	kindShardedSeqWR          = "parallel.ShardedSeqWR"
	kindShardedTSWR           = "parallel.ShardedTSWR"
	kindShardedTSWOR          = "parallel.ShardedTSWOR"
	kindShardedWeightedTSWOR  = "parallel.ShardedWeightedTSWOR"
	kindShardedWeightedTSWR   = "parallel.ShardedWeightedTSWR"
	kindShardedWeightedSeqWOR = "parallel.ShardedWeightedSeqWOR"
	kindShardedWeightedSeqWR  = "parallel.ShardedWeightedSeqWR"
)

// encodeDealer writes the dispatcher's persistent scalars (cursor and
// arrival count); everything else in the dispatcher is transport.
func encodeDealer[T any](w *snap.Writer, d *dispatcher[T]) {
	w.Int(d.next)
	w.U64(d.count)
}

// decodeDealer reads the dispatcher scalars and validates the cursor
// against the shard count.
func decodeDealer(r *snap.Reader, g int) (next int, count uint64) {
	next = r.Int()
	count = r.U64()
	if r.Err() == nil && (next < 0 || next >= g) {
		r.Failf("parallel dispatcher cursor %d outside [0, %d)", next, g)
	}
	return next, count
}

// validShardCount gates the shard-loop bound before any allocation.
func validShardCount(r *snap.Reader, g int) bool {
	if r.Err() != nil {
		return false
	}
	if g <= 0 || g > snap.MaxParam {
		r.Failf("parallel snapshot with g %d", g)
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// ShardedSeqWR
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w. It
// drains an ingest barrier first, so the snapshot reflects every element
// dispatched before the call. Producer goroutine only.
func (s *ShardedSeqWR[T]) Snapshot(w io.Writer) error {
	s.d.barrier()
	sw := snap.NewWriter(w, kindShardedSeqWR)
	sw.Int(s.g)
	sw.Int(s.k)
	sw.U64(s.per)
	snap.WriteRand(sw, s.rng)
	encodeDealer(sw, s.d)
	for _, sh := range s.seq {
		core.EncodeSeqWR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedSeqWR reads a ShardedSeqWR snapshot and starts its shard
// workers. The restored sampler resumes bit-identically: its next draws
// continue the snapshotted rng streams.
func RestoreShardedSeqWR[T any](r io.Reader) (*ShardedSeqWR[T], error) {
	sr, err := snap.NewReader(r, kindShardedSeqWR)
	if err != nil {
		return nil, err
	}
	s := &ShardedSeqWR[T]{}
	s.g = sr.Int()
	s.k = sr.Int()
	s.per = sr.U64()
	if !validShardCount(sr, s.g) {
		return nil, sr.Err()
	}
	if s.k <= 0 || s.per == 0 {
		return nil, snap.Errorf("parallel.ShardedSeqWR with k %d, per %d", s.k, s.per)
	}
	s.rng = snap.ReadRand(sr)
	if sr.Err() == nil && s.rng == nil {
		sr.Failf("parallel.ShardedSeqWR missing rng")
	}
	next, count := decodeDealer(sr, s.g)
	s.seq = make([]*core.SeqWR[T], s.g)
	shards := make([]stream.Sampler[T], s.g)
	for i := 0; i < s.g && sr.Err() == nil; i++ {
		sh := core.DecodeSeqWR[T](sr)
		if sr.Err() != nil {
			break
		}
		if sh.K() != s.k || sh.N() != s.per {
			sr.Failf("parallel.ShardedSeqWR shard %d shape (n %d, k %d) != (per %d, k %d)",
				i, sh.N(), sh.K(), s.per, s.k)
			break
		}
		s.seq[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	s.d = newDispatcher(shards)
	s.d.next = next
	s.d.count = count
	return s, nil
}

// ---------------------------------------------------------------------------
// tsDispatch (shared by ShardedTSWR / ShardedTSWOR)
// ---------------------------------------------------------------------------

// encodeTSDispatch writes the timestamp dispatch's persistent state: the
// shape scalars, the dispatcher rng, the global count estimator, the
// clock, and the dealing scalars. The per-query size cache is transient
// (rebuilt invalid on restore).
func encodeTSDispatch[T any](w *snap.Writer, t *tsDispatch[T]) {
	w.Int(t.g)
	w.Int(t.k)
	w.I64(t.t0)
	snap.WriteRand(w, t.rng)
	ehist.EncodeCounter(w, t.est)
	w.I64(t.now)
	w.Bool(t.begun)
	encodeDealer(w, t.d)
}

// decodeTSDispatch reads the body written by encodeTSDispatch. The
// dispatcher itself is NOT constructed here — the caller attaches it
// after the shard bodies decoded cleanly (so failed restores never spawn
// workers); the dealing scalars are returned for that attachment.
func decodeTSDispatch[T any](r *snap.Reader) (t *tsDispatch[T], next int, count uint64) {
	t = &tsDispatch[T]{}
	t.g = r.Int()
	t.k = r.Int()
	t.t0 = r.I64()
	if !validShardCount(r, t.g) {
		return t, 0, 0
	}
	if t.k <= 0 || t.t0 <= 0 {
		r.Failf("parallel timestamp dispatch with k %d, t0 %d", t.k, t.t0)
		return t, 0, 0
	}
	t.rng = snap.ReadRand(r)
	t.est = ehist.DecodeCounter(r)
	t.now = r.I64()
	t.begun = r.Bool()
	if r.Err() == nil && (t.rng == nil || t.est == nil) {
		r.Failf("parallel timestamp dispatch missing rng or estimator")
		return t, 0, 0
	}
	next, count = decodeDealer(r, t.g)
	return t, next, count
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. Producer goroutine only.
func (s *ShardedTSWR[T]) Snapshot(w io.Writer) error {
	s.ts.d.barrier()
	sw := snap.NewWriter(w, kindShardedTSWR)
	encodeTSDispatch(sw, s.ts)
	for _, sh := range s.shards {
		core.EncodeTSWR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedTSWR reads a ShardedTSWR snapshot and starts its shard
// workers.
func RestoreShardedTSWR[T any](r io.Reader) (*ShardedTSWR[T], error) {
	sr, err := snap.NewReader(r, kindShardedTSWR)
	if err != nil {
		return nil, err
	}
	ts, next, count := decodeTSDispatch[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	s := &ShardedTSWR[T]{ts: ts, shards: make([]*core.TSWR[T], ts.g)}
	shards := make([]stream.Sampler[T], ts.g)
	for i := 0; i < ts.g && sr.Err() == nil; i++ {
		sh := core.DecodeTSWR[T](sr)
		if sr.Err() != nil {
			break
		}
		if sh.K() != ts.k || sh.Horizon() != ts.t0 {
			sr.Failf("parallel.ShardedTSWR shard %d shape (t0 %d, k %d) != (t0 %d, k %d)",
				i, sh.Horizon(), sh.K(), ts.t0, ts.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	ts.d = newDispatcher(shards)
	ts.d.next = next
	ts.d.count = count
	return s, nil
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. Producer goroutine only.
func (s *ShardedTSWOR[T]) Snapshot(w io.Writer) error {
	s.ts.d.barrier()
	sw := snap.NewWriter(w, kindShardedTSWOR)
	encodeTSDispatch(sw, s.ts)
	for _, sh := range s.shards {
		core.EncodeTSWOR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedTSWOR reads a ShardedTSWOR snapshot and starts its shard
// workers.
func RestoreShardedTSWOR[T any](r io.Reader) (*ShardedTSWOR[T], error) {
	sr, err := snap.NewReader(r, kindShardedTSWOR)
	if err != nil {
		return nil, err
	}
	ts, next, count := decodeTSDispatch[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	s := &ShardedTSWOR[T]{ts: ts, shards: make([]*core.TSWOR[T], ts.g)}
	shards := make([]stream.Sampler[T], ts.g)
	for i := 0; i < ts.g && sr.Err() == nil; i++ {
		sh := core.DecodeTSWOR[T](sr)
		if sr.Err() != nil {
			break
		}
		if sh.K() != ts.k || sh.Horizon() != ts.t0 {
			sr.Failf("parallel.ShardedTSWOR shard %d shape (t0 %d, k %d) != (t0 %d, k %d)",
				i, sh.Horizon(), sh.K(), ts.t0, ts.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	ts.d = newDispatcher(shards)
	ts.d.next = next
	ts.d.count = count
	return s, nil
}

// ---------------------------------------------------------------------------
// wdispatch (shared by the four sharded weighted samplers)
// ---------------------------------------------------------------------------

// encodeWDispatch writes the weighted dispatch's persistent state. The
// weight function is code, not state (re-bound on restore); wscratch and
// the weight cache are transient.
func encodeWDispatch[T any](w *snap.Writer, wd *wdispatch[T]) {
	w.Int(wd.g)
	w.Int(wd.k)
	w.I64(wd.t0)
	w.Bool(wd.seq)
	snap.WriteRand(w, wd.rng)
	w.Len(len(wd.wests))
	for _, est := range wd.wests {
		ehist.EncodeWeighted(w, est)
	}
	ehist.EncodeCounter(w, wd.size)
	w.I64(wd.now)
	w.Bool(wd.begun)
	encodeDealer(w, wd.d)
}

// decodeWDispatch reads the body written by encodeWDispatch, re-binding
// the given weight function. As with decodeTSDispatch, the dispatcher is
// attached by the caller after the shard bodies decoded.
func decodeWDispatch[T any](r *snap.Reader, weight func(T) float64) (wd *wdispatch[T], next int, count uint64) {
	wd = &wdispatch[T]{weight: weight}
	wd.g = r.Int()
	wd.k = r.Int()
	wd.t0 = r.I64()
	wd.seq = r.Bool()
	if !validShardCount(r, wd.g) {
		return wd, 0, 0
	}
	if wd.k <= 0 || wd.t0 <= 0 {
		r.Failf("parallel weighted dispatch with k %d, horizon %d", wd.k, wd.t0)
		return wd, 0, 0
	}
	if weight == nil {
		r.Failf("parallel weighted dispatch restored with nil weight function")
		return wd, 0, 0
	}
	wd.rng = snap.ReadRand(r)
	wests := r.Len(wd.g)
	if r.Err() == nil && wests != wd.g {
		r.Failf("parallel weighted dispatch with %d weight oracles for %d shards", wests, wd.g)
		return wd, 0, 0
	}
	wd.wests = make([]*ehist.Weighted, 0, wd.g)
	for i := 0; i < wd.g && r.Err() == nil; i++ {
		est := ehist.DecodeWeighted(r)
		if r.Err() == nil && est == nil {
			r.Failf("parallel weighted dispatch missing shard %d weight oracle", i)
			break
		}
		wd.wests = append(wd.wests, est)
	}
	wd.size = ehist.DecodeCounter(r)
	wd.now = r.I64()
	wd.begun = r.Bool()
	if r.Err() == nil {
		if wd.rng == nil {
			r.Failf("parallel weighted dispatch missing rng")
			return wd, 0, 0
		}
		// The size oracle exists exactly on timestamp windows.
		if (wd.size == nil) != wd.seq {
			r.Failf("parallel weighted dispatch size oracle mismatch (seq %v)", wd.seq)
			return wd, 0, 0
		}
	}
	next, count = decodeDealer(r, wd.g)
	return wd, next, count
}

// attachWDispatcher builds the weight-aware dispatcher over decoded
// shards and loads the dealing scalars. Call only after the whole body
// decoded cleanly.
func attachWDispatcher[T any](wd *wdispatch[T], shards []stream.WeightedSampler[T], next int, count uint64) {
	wd.d = newWeightedDispatcher(shards)
	wd.d.next = next
	wd.d.count = count
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. The weight function is not captured;
// Restore re-binds it. Producer goroutine only.
func (s *ShardedWeightedTSWOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindShardedWeightedTSWOR)
	EncodeShardedWeightedTSWOR(sw, s)
	return sw.Err()
}

// EncodeShardedWeightedTSWOR writes the header-less body on a shared
// writer (the sharded subset-sum estimator embeds this sampler). Drains
// an ingest barrier first.
func EncodeShardedWeightedTSWOR[T any](w *snap.Writer, s *ShardedWeightedTSWOR[T]) {
	s.w.d.barrier()
	encodeWDispatch(w, s.w)
	for _, sh := range s.shards {
		weighted.EncodeTSWOR(w, sh)
	}
}

// RestoreShardedWeightedTSWOR reads a ShardedWeightedTSWOR snapshot,
// re-binding the given weight function, and starts its shard workers.
func RestoreShardedWeightedTSWOR[T any](r io.Reader, weight func(T) float64) (*ShardedWeightedTSWOR[T], error) {
	sr, err := snap.NewReader(r, kindShardedWeightedTSWOR)
	if err != nil {
		return nil, err
	}
	s := DecodeShardedWeightedTSWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeShardedWeightedTSWOR reads the header-less body on a shared
// reader.
func DecodeShardedWeightedTSWOR[T any](r *snap.Reader, weight func(T) float64) *ShardedWeightedTSWOR[T] {
	wd, next, count := decodeWDispatch(r, weight)
	if r.Err() != nil {
		return nil
	}
	s := &ShardedWeightedTSWOR[T]{w: wd, shards: make([]*weighted.TSWOR[T], wd.g)}
	shards := make([]stream.WeightedSampler[T], wd.g)
	for i := 0; i < wd.g && r.Err() == nil; i++ {
		sh := weighted.DecodeTSWOR(r, weight)
		if r.Err() != nil {
			break
		}
		if sh.K() != wd.k || sh.Horizon() != wd.t0 {
			r.Failf("parallel.ShardedWeightedTSWOR shard %d shape (t0 %d, k %d) != (t0 %d, k %d)",
				i, sh.Horizon(), sh.K(), wd.t0, wd.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if r.Err() != nil {
		return nil
	}
	attachWDispatcher(wd, shards, next, count)
	return s
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. Producer goroutine only.
func (s *ShardedWeightedTSWR[T]) Snapshot(w io.Writer) error {
	s.w.d.barrier()
	sw := snap.NewWriter(w, kindShardedWeightedTSWR)
	encodeWDispatch(sw, s.w)
	for _, sh := range s.shards {
		weighted.EncodeTSWR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedWeightedTSWR reads a ShardedWeightedTSWR snapshot,
// re-binding the given weight function, and starts its shard workers.
func RestoreShardedWeightedTSWR[T any](r io.Reader, weight func(T) float64) (*ShardedWeightedTSWR[T], error) {
	sr, err := snap.NewReader(r, kindShardedWeightedTSWR)
	if err != nil {
		return nil, err
	}
	wd, next, count := decodeWDispatch(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	s := &ShardedWeightedTSWR[T]{w: wd, shards: make([]*weighted.TSWR[T], wd.g)}
	shards := make([]stream.WeightedSampler[T], wd.g)
	for i := 0; i < wd.g && sr.Err() == nil; i++ {
		sh := weighted.DecodeTSWR(sr, weight)
		if sr.Err() != nil {
			break
		}
		if sh.K() != wd.k {
			sr.Failf("parallel.ShardedWeightedTSWR shard %d with k %d != %d", i, sh.K(), wd.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	attachWDispatcher(wd, shards, next, count)
	return s, nil
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. Producer goroutine only.
func (s *ShardedWeightedSeqWOR[T]) Snapshot(w io.Writer) error {
	s.w.d.barrier()
	sw := snap.NewWriter(w, kindShardedWeightedSeqWOR)
	sw.U64(s.n)
	encodeWDispatch(sw, s.w)
	for _, sh := range s.shards {
		weighted.EncodeWOR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedWeightedSeqWOR reads a ShardedWeightedSeqWOR snapshot,
// re-binding the given weight function, and starts its shard workers.
func RestoreShardedWeightedSeqWOR[T any](r io.Reader, weight func(T) float64) (*ShardedWeightedSeqWOR[T], error) {
	sr, err := snap.NewReader(r, kindShardedWeightedSeqWOR)
	if err != nil {
		return nil, err
	}
	n := sr.U64()
	wd, next, count := decodeWDispatch(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if !wd.seq || n == 0 || n%uint64(wd.g) != 0 {
		return nil, snap.Errorf("parallel.ShardedWeightedSeqWOR with n %d over g %d (seq %v)", n, wd.g, wd.seq)
	}
	s := &ShardedWeightedSeqWOR[T]{n: n, w: wd, shards: make([]*weighted.WOR[T], wd.g)}
	shards := make([]stream.WeightedSampler[T], wd.g)
	for i := 0; i < wd.g && sr.Err() == nil; i++ {
		sh := weighted.DecodeWOR(sr, weight)
		if sr.Err() != nil {
			break
		}
		if sh.K() != wd.k || sh.N() != n/uint64(wd.g) {
			sr.Failf("parallel.ShardedWeightedSeqWOR shard %d shape (n %d, k %d) != (per %d, k %d)",
				i, sh.N(), sh.K(), n/uint64(wd.g), wd.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	attachWDispatcher(wd, shards, next, count)
	return s, nil
}

// Snapshot writes the sampler's full state (header included) to w after
// draining an ingest barrier. Producer goroutine only.
func (s *ShardedWeightedSeqWR[T]) Snapshot(w io.Writer) error {
	s.w.d.barrier()
	sw := snap.NewWriter(w, kindShardedWeightedSeqWR)
	sw.U64(s.n)
	encodeWDispatch(sw, s.w)
	for _, sh := range s.shards {
		weighted.EncodeWR(sw, sh)
	}
	return sw.Err()
}

// RestoreShardedWeightedSeqWR reads a ShardedWeightedSeqWR snapshot,
// re-binding the given weight function, and starts its shard workers.
func RestoreShardedWeightedSeqWR[T any](r io.Reader, weight func(T) float64) (*ShardedWeightedSeqWR[T], error) {
	sr, err := snap.NewReader(r, kindShardedWeightedSeqWR)
	if err != nil {
		return nil, err
	}
	n := sr.U64()
	wd, next, count := decodeWDispatch(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if !wd.seq || n == 0 || n%uint64(wd.g) != 0 {
		return nil, snap.Errorf("parallel.ShardedWeightedSeqWR with n %d over g %d (seq %v)", n, wd.g, wd.seq)
	}
	s := &ShardedWeightedSeqWR[T]{n: n, w: wd, shards: make([]*weighted.WR[T], wd.g)}
	shards := make([]stream.WeightedSampler[T], wd.g)
	for i := 0; i < wd.g && sr.Err() == nil; i++ {
		sh := weighted.DecodeWR(sr, weight)
		if sr.Err() != nil {
			break
		}
		if sh.K() != wd.k || sh.N() != n/uint64(wd.g) {
			sr.Failf("parallel.ShardedWeightedSeqWR shard %d shape (n %d, k %d) != (per %d, k %d)",
				i, sh.N(), sh.K(), n/uint64(wd.g), wd.k)
			break
		}
		s.shards[i] = sh
		shards[i] = sh
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	attachWDispatcher(wd, shards, next, count)
	return s, nil
}
