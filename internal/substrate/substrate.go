// Package substrate is the single name→constructor vocabulary for every
// servable sampler in the repository: cmd/swsample's flags and the
// serving layer's registry specs (internal/serve) both resolve through
// Spec/New, so the two surfaces cannot drift apart — a substrate added
// here is immediately selectable from the CLI and registrable over HTTP.
//
// Served values are strings (both surfaces are line-shaped); New returns
// the concrete sampler as `any` and callers wire the capabilities they
// need by type assertion against the unified interfaces (stream.Sampler,
// stream.TimedSampler, stream.WeightedSampler, the oracle and estimator
// methods) — see internal/serve's Instance for the full capability set.
package substrate

import (
	cryptorand "crypto/rand" //swlint:allow detrand entropy only for the optional default-seed bootstrap; every draw still flows through seeded xrand
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// Spec names a substrate and its parameters. The JSON tags are the wire
// shape of the serving layer's registration endpoint.
type Spec struct {
	// Mode selects the window model: "seq" (last N elements) or "ts"
	// (last T0 clock ticks).
	Mode string `json:"mode"`
	// Sampler is the substrate name:
	//
	//	seq: wor | wr | chain | oversample | fullwindow | sharded-wr |
	//	     weighted-wor | weighted-wr | sharded-weighted-wor |
	//	     sharded-weighted-wr | subsetsum
	//	ts:  wor | wr | priority | skyband | fullwindow | sharded-wr |
	//	     sharded-wor | weighted-ts-wor | weighted-ts-wr |
	//	     sharded-weighted-ts-wor | sharded-weighted-ts-wr |
	//	     subsetsum-ts | sharded-subsetsum-ts
	Sampler string `json:"sampler"`
	// N is the sequence window size (mode "seq").
	N uint64 `json:"n,omitempty"`
	// T0 is the timestamp horizon in clock ticks (mode "ts").
	T0 int64 `json:"t0,omitempty"`
	// K is the sample size (sketch size for the estimator substrates).
	K int `json:"k"`
	// G is the shard count of the sharded-* substrates.
	G int `json:"g,omitempty"`
	// Seed makes the instance reproducible; 0 draws a crypto/rand seed.
	Seed uint64 `json:"seed,omitempty"`
	// Weight selects the weight function of the weighted substrates:
	// "" or "bytes" weighs a value by its byte length (empty values weigh
	// 1); "field:<i>" parses the i-th whitespace-separated field as a
	// float, falling back to 1 on missing/bad/non-positive fields.
	// Explicit per-element ingest weights override the function on
	// substrates that accept them.
	Weight string `json:"weight,omitempty"`
}

// OracleEps is the relative error of the sharded substrates' cross-shard
// count/weight oracles (and matches weighted.DefaultSizeEps).
const OracleEps = 0.05

// Validate checks the spec without building anything.
func (sp Spec) Validate() error {
	switch sp.Mode {
	case "seq":
		if sp.N == 0 {
			return fmt.Errorf("substrate: spec needs n >= 1 in seq mode")
		}
	case "ts":
		if sp.T0 <= 0 {
			return fmt.Errorf("substrate: spec needs t0 >= 1 in ts mode")
		}
	default:
		return fmt.Errorf("substrate: unknown mode %q (want seq or ts)", sp.Mode)
	}
	if sp.K < 1 {
		return fmt.Errorf("substrate: spec needs k >= 1")
	}
	if strings.HasPrefix(sp.Sampler, "sharded-") && sp.G < 1 {
		return fmt.Errorf("substrate: sharded substrates need g >= 1")
	}
	if _, err := WeightFunc(sp.Weight); err != nil {
		return err
	}
	return nil
}

// WeightFunc resolves a Spec.Weight selector into the weight function of
// the weighted substrates (the fallbacks keep a stream flowing on dirty
// input).
func WeightFunc(sel string) (func(string) float64, error) {
	switch {
	case sel == "" || sel == "bytes":
		return func(v string) float64 {
			if len(v) == 0 {
				return 1
			}
			return float64(len(v))
		}, nil
	case strings.HasPrefix(sel, "field:"):
		idx, err := strconv.Atoi(strings.TrimPrefix(sel, "field:"))
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("substrate: bad weight selector %q (want field:<non-negative i>)", sel)
		}
		return func(v string) float64 {
			fields := strings.Fields(v)
			if idx >= len(fields) {
				return 1
			}
			w, err := strconv.ParseFloat(fields[idx], 64)
			if err != nil || !(w > 0) || math.IsInf(w, 1) {
				return 1
			}
			return w
		}, nil
	default:
		return nil, fmt.Errorf("substrate: bad weight selector %q (want \"bytes\" or \"field:<i>\")", sel)
	}
}

// WeightSelector translates the CLIs' -wfield flag convention into a
// Spec.Weight selector: a negative field means byte-length weights.
func WeightSelector(wfield int) string {
	if wfield < 0 {
		return "bytes"
	}
	return fmt.Sprintf("field:%d", wfield)
}

// ResolveSeed matches the public WithSeed convention: 0 draws a fresh
// seed from crypto/rand.
func ResolveSeed(seed uint64) uint64 {
	if seed != 0 {
		return seed
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return 0x9e3779b97f4a7c15
}

// New validates the spec, seeds an RNG, and constructs the named
// substrate over string values. It returns the concrete sampler and the
// resolved seed (== spec.Seed unless that was 0).
func New(spec Spec) (any, uint64, error) {
	if err := spec.Validate(); err != nil {
		return nil, 0, err
	}
	weight, err := WeightFunc(spec.Weight)
	if err != nil {
		return nil, 0, err
	}
	seed := ResolveSeed(spec.Seed)
	rng := xrand.New(seed)
	n, t0, k, g := spec.N, spec.T0, spec.K, spec.G
	needDivisible := func(name string) error {
		if n%uint64(g) != 0 {
			return fmt.Errorf("substrate: n must be divisible by g for %s", name)
		}
		return nil
	}
	var built any
	switch spec.Mode {
	case "seq":
		switch spec.Sampler {
		case "wor":
			built = core.NewSeqWOR[string](rng, n, k)
		case "wr":
			built = core.NewSeqWR[string](rng, n, k)
		case "chain":
			built = baseline.NewChain[string](rng, n, k)
		case "oversample":
			built = baseline.NewOversample[string](rng, n, k, 4)
		case "fullwindow":
			built = baseline.NewFullWindowSeq[string](rng, n).Bind(k, true)
		case "sharded-wr":
			if err := needDivisible("sharded-wr"); err != nil {
				return nil, 0, err
			}
			built = parallel.NewShardedSeqWR[string](rng, n, g, k)
		case "weighted-wor":
			built = weighted.NewWOR[string](rng, n, k, weight)
		case "weighted-wr":
			built = weighted.NewWR[string](rng, n, k, weight)
		case "sharded-weighted-wor":
			if err := needDivisible("sharded-weighted-wor"); err != nil {
				return nil, 0, err
			}
			built = parallel.NewShardedWeightedSeqWOR[string](rng, n, g, k, OracleEps, weight)
		case "sharded-weighted-wr":
			if err := needDivisible("sharded-weighted-wr"); err != nil {
				return nil, 0, err
			}
			built = parallel.NewShardedWeightedSeqWR[string](rng, n, g, k, OracleEps, weight)
		case "subsetsum":
			built = apps.NewSubsetSum[string](rng, n, k, weight)
		default:
			return nil, 0, fmt.Errorf("substrate: unknown seq sampler %q", spec.Sampler)
		}
	case "ts":
		switch spec.Sampler {
		case "wor":
			built = core.NewTSWOR[string](rng, t0, k)
		case "wr":
			built = core.NewTSWR[string](rng, t0, k)
		case "priority":
			built = baseline.NewPriority[string](rng, t0, k)
		case "skyband":
			built = baseline.NewSkyband[string](rng, t0, k)
		case "fullwindow":
			built = baseline.NewFullWindowTS[string](rng, t0).Bind(k, true)
		case "sharded-wr":
			built = parallel.NewShardedTSWR[string](rng, t0, g, k, OracleEps)
		case "sharded-wor":
			built = parallel.NewShardedTSWOR[string](rng, t0, g, k, OracleEps)
		case "weighted-ts-wor":
			built = weighted.NewTSWOR[string](rng, t0, k, weighted.DefaultSizeEps, weight)
		case "weighted-ts-wr":
			built = weighted.NewTSWR[string](rng, t0, k, weighted.DefaultSizeEps, weight)
		case "sharded-weighted-ts-wor":
			built = parallel.NewShardedWeightedTSWOR[string](rng, t0, g, k, weighted.DefaultSizeEps, weight)
		case "sharded-weighted-ts-wr":
			built = parallel.NewShardedWeightedTSWR[string](rng, t0, g, k, weighted.DefaultSizeEps, weight)
		case "subsetsum-ts":
			built = apps.NewSubsetSumTS[string](rng, t0, k, weighted.DefaultSizeEps, weight)
		case "sharded-subsetsum-ts":
			built = apps.NewShardedSubsetSumTS[string](rng, t0, g, k, weighted.DefaultSizeEps, weight)
		default:
			return nil, 0, fmt.Errorf("substrate: unknown ts sampler %q", spec.Sampler)
		}
	}
	return built, seed, nil
}
