package substrate

import (
	"fmt"
	"io"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/snap"
	"slidingsample/internal/weighted"
)

// kindInstance heads a spec-carrying substrate snapshot: the spec rides
// in front of the sampler body so Restore can re-resolve the constructor
// vocabulary — and re-bind the weight function — by NAME, exactly the way
// New resolves it. The sampler body that follows is the substrate's own
// full snapshot (its own magic+version+kind header included), so a
// snapshot restored against a tampered spec fails on the inner kind
// check rather than decoding garbage.
const kindInstance = "substrate.Instance"

// snapshotter is the capability every servable substrate implements.
type snapshotter interface {
	Snapshot(w io.Writer) error
}

func encodeSpec(w *snap.Writer, spec Spec) {
	w.String(spec.Mode)
	w.String(spec.Sampler)
	w.U64(spec.N)
	w.I64(spec.T0)
	w.Int(spec.K)
	w.Int(spec.G)
	w.U64(spec.Seed)
	w.String(spec.Weight)
}

func decodeSpec(r *snap.Reader) Spec {
	return Spec{
		Mode:    r.String(),
		Sampler: r.String(),
		N:       r.U64(),
		T0:      r.I64(),
		K:       r.Int(),
		G:       r.Int(),
		Seed:    r.U64(),
		Weight:  r.String(),
	}
}

// Snapshot writes a spec-headed snapshot of a substrate built by New for
// that spec. Sharded substrates drain an ingest barrier inside their own
// Snapshot, so callers only need the usual single-producer discipline.
func Snapshot(w io.Writer, spec Spec, built any) error {
	s, ok := built.(snapshotter)
	if !ok {
		return fmt.Errorf("substrate: %T does not support snapshots", built)
	}
	sw := snap.NewWriter(w, kindInstance)
	encodeSpec(sw, spec)
	if err := sw.Err(); err != nil {
		return err
	}
	return s.Snapshot(w)
}

// Restore reads a spec-headed snapshot, re-resolves the named substrate
// (and its weight function) through the same vocabulary as New, and
// rebuilds the sampler mid-stream: the restored instance resumes
// bit-identically to the one that was snapshotted. It returns the spec
// alongside the substrate so callers can re-register capabilities.
func Restore(r io.Reader) (Spec, any, error) {
	sr, err := snap.NewReader(r, kindInstance)
	if err != nil {
		return Spec{}, nil, err
	}
	spec := decodeSpec(sr)
	if err := sr.Err(); err != nil {
		return Spec{}, nil, err
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, nil, fmt.Errorf("%w: %v", snap.ErrFormat, err)
	}
	weight, err := WeightFunc(spec.Weight)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("%w: %v", snap.ErrFormat, err)
	}
	var built any
	switch spec.Mode {
	case "seq":
		switch spec.Sampler {
		case "wor":
			built, err = core.RestoreSeqWOR[string](r)
		case "wr":
			built, err = core.RestoreSeqWR[string](r)
		case "chain":
			built, err = baseline.RestoreChain[string](r)
		case "oversample":
			built, err = baseline.RestoreOversample[string](r)
		case "fullwindow":
			built, err = baseline.RestoreFullWindow[string](r)
		case "sharded-wr":
			built, err = parallel.RestoreShardedSeqWR[string](r)
		case "weighted-wor":
			built, err = weighted.RestoreWOR(r, weight)
		case "weighted-wr":
			built, err = weighted.RestoreWR(r, weight)
		case "sharded-weighted-wor":
			built, err = parallel.RestoreShardedWeightedSeqWOR(r, weight)
		case "sharded-weighted-wr":
			built, err = parallel.RestoreShardedWeightedSeqWR(r, weight)
		case "subsetsum":
			built, err = apps.RestoreSubsetSum(r, weight)
		default:
			return Spec{}, nil, snap.Errorf("substrate: unknown seq sampler %q", spec.Sampler)
		}
	case "ts":
		switch spec.Sampler {
		case "wor":
			built, err = core.RestoreTSWOR[string](r)
		case "wr":
			built, err = core.RestoreTSWR[string](r)
		case "priority":
			built, err = baseline.RestorePriority[string](r)
		case "skyband":
			built, err = baseline.RestoreSkyband[string](r)
		case "fullwindow":
			built, err = baseline.RestoreFullWindow[string](r)
		case "sharded-wr":
			built, err = parallel.RestoreShardedTSWR[string](r)
		case "sharded-wor":
			built, err = parallel.RestoreShardedTSWOR[string](r)
		case "weighted-ts-wor":
			built, err = weighted.RestoreTSWOR(r, weight)
		case "weighted-ts-wr":
			built, err = weighted.RestoreTSWR(r, weight)
		case "sharded-weighted-ts-wor":
			built, err = parallel.RestoreShardedWeightedTSWOR(r, weight)
		case "sharded-weighted-ts-wr":
			built, err = parallel.RestoreShardedWeightedTSWR(r, weight)
		case "subsetsum-ts":
			built, err = apps.RestoreSubsetSumTS(r, weight)
		case "sharded-subsetsum-ts":
			built, err = apps.RestoreShardedSubsetSumTS(r, weight)
		default:
			return Spec{}, nil, snap.Errorf("substrate: unknown ts sampler %q", spec.Sampler)
		}
	}
	if err != nil {
		return Spec{}, nil, err
	}
	// Every substrate reports its sample-size parameter; a spec/body
	// mismatch means a spliced or tampered snapshot.
	if kg, ok := built.(interface{ K() int }); ok && kg.K() != spec.K {
		return Spec{}, nil, snap.Errorf("substrate: snapshot k %d does not match spec k %d", kg.K(), spec.K)
	}
	return spec, built, nil
}
