package stream

// Sampler is the unified interface every sliding-window sampler in this
// repository satisfies: the four core samplers (Theorems 2.1, 2.2, 3.9, 4.4),
// the five baselines, the sharded parallel wrappers and the step-biased
// extension. It is what lets the application layer, the experiment harness
// and the command-line tools run against any substrate without N× code
// duplication.
//
// The contract, shared by every implementation:
//
//   - Observe feeds one element. The sampler assigns the element's arrival
//     index itself (from its arrival counter); ts is the element's timestamp,
//     which sequence-based samplers carry through without interpreting.
//     Timestamps must be non-decreasing in stream order.
//   - ObserveBatch feeds a run of elements at once. Only Value and TS of each
//     entry are used — Index is assigned by the sampler exactly as Observe
//     would. ObserveBatch(batch) leaves the sampler in the same state as
//     calling Observe for each entry in order (the batched hot paths in
//     internal/core amortize bookkeeping, not randomness: given equal seeds,
//     the batched and looped paths make identical random choices and return
//     identical samples).
//   - Sample returns the current sample at the latest observed time:
//     K elements for with-replacement samplers, min(K, |window|) distinct
//     elements for without-replacement samplers. ok is false while the
//     window is empty.
//   - K returns the sample-size parameter; Count the number of elements
//     observed since creation.
//   - Words/MaxWords report the footprint under the DESIGN.md §6 word model.
//
// Samplers are not safe for concurrent use unless documented otherwise (the
// internal/parallel wrappers run their own ingest goroutines behind this
// same interface).
type Sampler[T any] interface {
	Observe(value T, ts int64)
	ObserveBatch(batch []Element[T])
	Sample() ([]Element[T], bool)
	K() int
	Count() uint64
	MemoryReporter
}

// TimedSampler is a Sampler over a timestamp-based window, answering queries
// "as of" an explicit time. SampleAt(now) returns the sample over the
// elements active at time now (an element with timestamp ts is active iff
// now - ts < t0); querying advances the sampler's clock and never rewinds it.
type TimedSampler[T any] interface {
	Sampler[T]
	SampleAt(now int64) ([]Element[T], bool)
}

// WeightedSampler is a Sampler that can ingest elements with PRECOMPUTED
// weights. Every weighted sampler derives its weights from a weight
// function fixed at construction (which is what lets it speak the plain
// Sampler interface), but layers that already computed — or were handed —
// the weight can supply it instead of paying the weight function twice:
// the sharded dispatcher needs each element's weight for its per-shard
// weight oracles before dealing (and the sharded weighted samplers
// themselves satisfy this interface, so the chain composes), and the
// serving layer's HTTP ingest carries explicit per-element weights from
// the client. The contract mirrors Observe/ObserveBatch exactly:
// supplying weights[i] == weight(batch[i].Value) leaves the sampler in the
// same state, including identical random draws, as the unweighted path.
type WeightedSampler[T any] interface {
	Sampler[T]
	// ObserveWeighted feeds one element whose weight was already computed.
	// The weight must be positive and finite (panics otherwise, matching
	// the internal convention).
	ObserveWeighted(value T, weight float64, ts int64)
	// ObserveWeightedBatch feeds a run of elements with precomputed
	// weights; weights[i] belongs to batch[i]. Panics when the slices have
	// different lengths.
	ObserveWeightedBatch(batch []Element[T], weights []float64)
}

// SlotSampler is the optional extension the Section 5 application layer
// needs: access to the live sample slots (with their Aux payload) rather
// than element copies, plus enumeration of every retained slot. The core
// samplers implement it; baselines need not.
type SlotSampler[T any] interface {
	SlotVisitor[T]
	// SlotsAt returns the sampler's current output slots at time now
	// (sequence-based samplers ignore now).
	SlotsAt(now int64) ([]*Stored[T], bool)
}

// ObserveAll is the reference (looped) batch ingest: it feeds each entry
// through Observe. Implementations without a dedicated hot path use it as
// their ObserveBatch; the conformance battery compares optimized batch paths
// against it.
func ObserveAll[T any](s interface{ Observe(T, int64) }, batch []Element[T]) {
	for _, e := range batch {
		s.Observe(e.Value, e.TS)
	}
}
