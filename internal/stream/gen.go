package stream

import (
	"slidingsample/internal/xrand"
)

// ValueGen produces the payload sequence of a synthetic stream.
type ValueGen interface {
	// Next returns the next value.
	Next() uint64
}

// Arrivals produces the timestamp sequence of a synthetic stream. Successive
// calls must return non-decreasing timestamps; several consecutive elements
// may share a timestamp (a "burst" in the paper's terminology).
type Arrivals interface {
	// Next returns the timestamp of the next element.
	Next() int64
}

// ---------------------------------------------------------------------------
// Value generators
// ---------------------------------------------------------------------------

// UniformValues draws values uniformly from [0, m).
type UniformValues struct {
	r *xrand.Rand
	m uint64
}

// NewUniformValues returns a uniform value generator over [0, m).
func NewUniformValues(r *xrand.Rand, m uint64) *UniformValues {
	if m == 0 {
		panic("stream: NewUniformValues with m == 0")
	}
	return &UniformValues{r: r, m: m}
}

// Next implements ValueGen.
func (g *UniformValues) Next() uint64 { return g.r.Uint64n(g.m) }

// ZipfValues draws values from a Zipf(s) law over [0, m) — the skewed
// workload for the Section 5 frequency-moment and entropy experiments.
type ZipfValues struct{ z *xrand.Zipf }

// NewZipfValues returns a Zipf(s) value generator over [0, m).
func NewZipfValues(r *xrand.Rand, s float64, m int) *ZipfValues {
	return &ZipfValues{z: xrand.NewZipf(r, s, m)}
}

// Next implements ValueGen.
func (g *ZipfValues) Next() uint64 { return g.z.Next() }

// ConstValues always emits the same value. Useful for degenerate-distribution
// edge cases in tests (F_k of a constant stream, entropy 0).
type ConstValues struct{ v uint64 }

// NewConstValues returns a generator that always emits v.
func NewConstValues(v uint64) *ConstValues { return &ConstValues{v: v} }

// Next implements ValueGen.
func (g *ConstValues) Next() uint64 { return g.v }

// CycleValues emits 0,1,...,m-1,0,1,... — a perfectly flat distribution with
// a deterministic order, used to make uniformity tests independent of value
// randomness.
type CycleValues struct {
	m, i uint64
}

// NewCycleValues returns a round-robin generator over [0, m).
func NewCycleValues(m uint64) *CycleValues {
	if m == 0 {
		panic("stream: NewCycleValues with m == 0")
	}
	return &CycleValues{m: m}
}

// Next implements ValueGen.
func (g *CycleValues) Next() uint64 {
	v := g.i % g.m
	g.i++
	return v
}

// IndexValues emits 0,1,2,... so the value doubles as the arrival index.
// Uniformity tests use it: "which window position did the sample land on"
// becomes a direct read of the value.
type IndexValues struct{ i uint64 }

// NewIndexValues returns the identity generator.
func NewIndexValues() *IndexValues { return &IndexValues{} }

// Next implements ValueGen.
func (g *IndexValues) Next() uint64 {
	v := g.i
	g.i++
	return v
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

// SteadyArrivals emits perTick elements at timestamp t, then perTick at t+1,
// and so on — the fixed-rate regime where sequence-based and timestamp-based
// windows coincide (n = perTick * t0).
type SteadyArrivals struct {
	perTick int
	i       int
	ts      int64
}

// NewSteadyArrivals returns a fixed-rate arrival process.
func NewSteadyArrivals(perTick int) *SteadyArrivals {
	if perTick <= 0 {
		panic("stream: NewSteadyArrivals with perTick <= 0")
	}
	return &SteadyArrivals{perTick: perTick}
}

// Next implements Arrivals.
func (a *SteadyArrivals) Next() int64 {
	if a.i == a.perTick {
		a.i = 0
		a.ts++
	}
	a.i++
	return a.ts
}

// BurstyArrivals models the asynchronous regime timestamp windows exist for:
// geometric burst sizes separated by geometric gaps. The number of active
// elements n(t) fluctuates by orders of magnitude, which is what stresses the
// covering decomposition.
type BurstyArrivals struct {
	r         *xrand.Rand
	burstP    float64 // geometric parameter: mean burst = 1/burstP
	gapP      float64 // geometric parameter: mean gap = 1/gapP ticks
	ts        int64
	remaining int
	started   bool
}

// NewBurstyArrivals returns a bursty arrival process with the given mean
// burst size and mean gap (both >= 1).
func NewBurstyArrivals(r *xrand.Rand, meanBurst, meanGap float64) *BurstyArrivals {
	if meanBurst < 1 || meanGap < 1 {
		panic("stream: NewBurstyArrivals means must be >= 1")
	}
	return &BurstyArrivals{r: r, burstP: 1 / meanBurst, gapP: 1 / meanGap}
}

func (a *BurstyArrivals) geometric(p float64) int {
	// Geometric on {1,2,...} by trial; p in (0,1].
	n := 1
	for a.r.Float64() >= p {
		n++
		if n > 1<<20 { // safety valve; statistically unreachable for our p
			break
		}
	}
	return n
}

// Next implements Arrivals.
func (a *BurstyArrivals) Next() int64 {
	if a.remaining == 0 {
		if a.started {
			a.ts += int64(a.geometric(a.gapP))
		}
		a.started = true
		a.remaining = a.geometric(a.burstP)
	}
	a.remaining--
	return a.ts
}

// DoublingArrivals is the Lemma 3.10 adversary: for timestamp i with
// 0 <= i <= 2*t0 it emits 2^(2*t0-i) elements, and afterwards exactly one
// element per timestamp. Any correct sampler over a window of t0 ticks must
// retain Ω(t0) = Ω(log n) candidate elements on this stream.
//
// The unscaled stream has 2^(2*t0) elements at timestamp 0 alone, so the
// constructor takes a cap: burst sizes are truncated at maxBurst while the
// doubling *shape* (each tick halves) is preserved, which is what the lower
// bound argument needs.
type DoublingArrivals struct {
	t0       int
	maxBurst uint64
	ts       int64
	emitted  uint64
}

// NewDoublingArrivals returns the adversary stream for window parameter t0,
// with burst sizes capped at maxBurst (0 means no cap; beware 2^(2*t0)).
func NewDoublingArrivals(t0 int, maxBurst uint64) *DoublingArrivals {
	if t0 <= 0 {
		panic("stream: NewDoublingArrivals with t0 <= 0")
	}
	if t0 > 30 && maxBurst == 0 {
		panic("stream: NewDoublingArrivals would emit more than 2^60 elements; set maxBurst")
	}
	return &DoublingArrivals{t0: t0, maxBurst: maxBurst}
}

// BurstSize returns the number of elements the adversary emits at tick i.
func (a *DoublingArrivals) BurstSize(i int64) uint64 {
	if i > int64(2*a.t0) {
		return 1
	}
	exp := uint(int64(2*a.t0) - i)
	var size uint64
	if exp >= 63 {
		size = 1 << 62
	} else {
		size = 1 << exp
	}
	if a.maxBurst > 0 && size > a.maxBurst {
		size = a.maxBurst
	}
	return size
}

// Next implements Arrivals.
func (a *DoublingArrivals) Next() int64 {
	if a.emitted >= a.BurstSize(a.ts) {
		a.emitted = 0
		a.ts++
	}
	a.emitted++
	return a.ts
}

// PoissonArrivals emits elements with exponentially distributed gaps
// quantized to integer ticks at the given mean rate (elements per tick).
type PoissonArrivals struct {
	r    *xrand.Rand
	rate float64
	now  float64
}

// NewPoissonArrivals returns a Poisson-like arrival process.
func NewPoissonArrivals(r *xrand.Rand, rate float64) *PoissonArrivals {
	if rate <= 0 {
		panic("stream: NewPoissonArrivals with rate <= 0")
	}
	return &PoissonArrivals{r: r, rate: rate}
}

// Next implements Arrivals.
func (a *PoissonArrivals) Next() int64 {
	a.now += a.r.ExpFloat64() / a.rate
	return int64(a.now)
}

// ---------------------------------------------------------------------------
// Source: values x arrivals -> elements
// ---------------------------------------------------------------------------

// Source combines a value generator and an arrival process into a stream of
// elements with consecutive indexes.
type Source struct {
	V   ValueGen
	A   Arrivals
	idx uint64
}

// NewSource pairs a value generator with an arrival process.
func NewSource(v ValueGen, a Arrivals) *Source { return &Source{V: v, A: a} }

// Next returns the next element.
func (s *Source) Next() Element[uint64] {
	e := Element[uint64]{Value: s.V.Next(), Index: s.idx, TS: s.A.Next()}
	s.idx++
	return e
}

// Take returns the next n elements as a slice (convenient for tests).
func (s *Source) Take(n int) []Element[uint64] {
	out := make([]Element[uint64], n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Channel streams n elements through a channel and then closes it. This is
// the idiomatic Go feed for the samplers ("share memory by communicating");
// the examples and the CLI consume streams this way.
func (s *Source) Channel(n int) <-chan Element[uint64] {
	ch := make(chan Element[uint64], 256)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- s.Next()
		}
	}()
	return ch
}
