package stream

import (
	"testing"
	"testing/quick"

	"slidingsample/internal/xrand"
)

func TestSourceIndexesAreConsecutive(t *testing.T) {
	src := NewSource(NewIndexValues(), NewSteadyArrivals(1))
	for i := uint64(0); i < 100; i++ {
		e := src.Next()
		if e.Index != i {
			t.Fatalf("element %d has index %d", i, e.Index)
		}
		if e.Value != i {
			t.Fatalf("IndexValues at %d produced %d", i, e.Value)
		}
	}
}

func TestSteadyArrivals(t *testing.T) {
	a := NewSteadyArrivals(3)
	want := []int64{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range want {
		if got := a.Next(); got != w {
			t.Fatalf("arrival %d: got ts %d want %d", i, got, w)
		}
	}
}

func TestSteadyArrivalsSingleRate(t *testing.T) {
	a := NewSteadyArrivals(1)
	for i := int64(0); i < 50; i++ {
		if got := a.Next(); got != i {
			t.Fatalf("perTick=1 arrival %d: got %d", i, got)
		}
	}
}

func TestArrivalsMonotone(t *testing.T) {
	r := xrand.New(1)
	procs := map[string]Arrivals{
		"steady":   NewSteadyArrivals(4),
		"bursty":   NewBurstyArrivals(r.Split(), 8, 5),
		"doubling": NewDoublingArrivals(6, 0),
		"poisson":  NewPoissonArrivals(r.Split(), 2.5),
	}
	for name, p := range procs {
		prev := int64(-1 << 62)
		for i := 0; i < 5000; i++ {
			ts := p.Next()
			if ts < prev {
				t.Fatalf("%s: timestamp decreased from %d to %d at element %d", name, prev, ts, i)
			}
			prev = ts
		}
	}
}

func TestBurstyArrivalsHasBurstsAndGaps(t *testing.T) {
	a := NewBurstyArrivals(xrand.New(7), 10, 10)
	counts := map[int64]int{}
	var maxTS int64
	for i := 0; i < 20000; i++ {
		ts := a.Next()
		counts[ts]++
		if ts > maxTS {
			maxTS = ts
		}
	}
	burst := false
	for _, c := range counts {
		if c >= 5 {
			burst = true
		}
	}
	if !burst {
		t.Fatal("no burst of size >= 5 observed with mean burst 10")
	}
	if int64(len(counts)) == maxTS+1 {
		t.Fatal("no gaps observed with mean gap 10")
	}
}

func TestDoublingArrivalsShape(t *testing.T) {
	const t0 = 4
	a := NewDoublingArrivals(t0, 0)
	counts := map[int64]uint64{}
	// total elements through tick 2*t0: sum 2^(2t0-i) = 2^(2t0+1)-1
	total := uint64(1)<<(2*t0+1) - 1
	for i := uint64(0); i < total+5; i++ {
		counts[a.Next()]++
	}
	for i := int64(0); i <= 2*t0; i++ {
		want := uint64(1) << (2*t0 - i)
		if counts[i] != want {
			t.Fatalf("tick %d: burst %d, want %d", i, counts[i], want)
		}
	}
	for i := int64(2*t0 + 1); i <= 2*t0+5; i++ {
		if counts[i] > 1 {
			t.Fatalf("tick %d after the doubling phase has burst %d, want <= 1", i, counts[i])
		}
	}
}

func TestDoublingArrivalsCap(t *testing.T) {
	a := NewDoublingArrivals(10, 16)
	for i := int64(0); i <= 20; i++ {
		if got := a.BurstSize(i); got > 16 {
			t.Fatalf("tick %d burst %d exceeds cap", i, got)
		}
	}
	if a.BurstSize(14) != 16 || a.BurstSize(19) != 2 || a.BurstSize(25) != 1 {
		t.Fatalf("cap changed the doubling shape unexpectedly: %d %d %d",
			a.BurstSize(14), a.BurstSize(19), a.BurstSize(25))
	}
}

func TestCycleValues(t *testing.T) {
	g := NewCycleValues(3)
	want := []uint64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("cycle %d: got %d want %d", i, got, w)
		}
	}
}

func TestConstValues(t *testing.T) {
	g := NewConstValues(42)
	for i := 0; i < 10; i++ {
		if g.Next() != 42 {
			t.Fatal("ConstValues drifted")
		}
	}
}

func TestUniformValuesRange(t *testing.T) {
	g := NewUniformValues(xrand.New(2), 17)
	f := func(_ uint8) bool { return g.Next() < 17 }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfValuesRange(t *testing.T) {
	g := NewZipfValues(xrand.New(3), 1.2, 50)
	for i := 0; i < 2000; i++ {
		if g.Next() >= 50 {
			t.Fatal("ZipfValues out of range")
		}
	}
}

func TestTake(t *testing.T) {
	src := NewSource(NewIndexValues(), NewSteadyArrivals(2))
	es := src.Take(10)
	if len(es) != 10 {
		t.Fatalf("Take(10) returned %d elements", len(es))
	}
	for i, e := range es {
		if e.Index != uint64(i) {
			t.Fatalf("Take element %d has index %d", i, e.Index)
		}
	}
}

func TestChannelDeliversAllAndCloses(t *testing.T) {
	src := NewSource(NewIndexValues(), NewSteadyArrivals(1))
	n := 0
	for e := range src.Channel(500) {
		if e.Index != uint64(n) {
			t.Fatalf("channel element %d has index %d", n, e.Index)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("channel delivered %d elements, want 500", n)
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniformValues(xrand.New(1), 0) },
		func() { NewCycleValues(0) },
		func() { NewSteadyArrivals(0) },
		func() { NewBurstyArrivals(xrand.New(1), 0.5, 2) },
		func() { NewDoublingArrivals(0, 0) },
		func() { NewDoublingArrivals(31, 0) },
		func() { NewPoissonArrivals(xrand.New(1), 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("constructor case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
