// Package stream defines the data-stream model shared by every sampler and
// workload in this repository.
//
// The paper's model (Section 1.4): a stream D of elements p_i, i >= 0, where
// each element carries an arrival index and — for timestamp-based windows —
// a timestamp T(p_i) with T(p_i) <= T(p_{i+1}). Many elements may share a
// timestamp ("bursts"); sequence-based windows ignore timestamps entirely.
//
// Element is generic in the carried value: none of the paper's algorithms
// ever inspects values, only indexes and timestamps, so the machinery works
// for any payload type.
package stream

// Element is one stream item: a value plus the two coordinates the sliding
// window algorithms care about.
type Element[T any] struct {
	// Value is the application payload.
	Value T
	// Index is the 0-based arrival position in the stream (the paper's i in
	// p_i). Assigned by whoever feeds the sampler; samplers in this module
	// assign it themselves from their arrival counter.
	Index uint64
	// TS is the timestamp of the element's entrance (the paper's T(p)).
	// Sequence-based samplers ignore it. Timestamps must be non-decreasing
	// in stream order.
	TS int64
}

// MemoryReporter is implemented by every sampler (ours and the baselines) so
// experiments can compare memory footprints under the paper's cost model.
//
// The unit is the paper's "memory word": one word stores a stream element,
// an index, or a timestamp (Section 1.4). Conventions used uniformly in this
// repository (documented in DESIGN.md §6): stored value = 1 word, stored
// index = 1 word, stored timestamp = 1 word, stored priority = 1 word, each
// live counter or bookkeeping integer = 1 word. Go runtime overhead (slice
// headers, allocator slack) is intentionally not counted — the paper's model
// doesn't either; see the E11 benchmarks for real allocation numbers.
type MemoryReporter interface {
	// Words returns the current footprint in memory words.
	Words() int
	// MaxWords returns the peak footprint observed since creation (the
	// worst-case bound is what Theorems 2.1-4.4 are about).
	MaxWords() int
}

// StoredWords is the per-stored-element cost in words: value + index +
// timestamp. Keeping it a named constant makes the Words() arithmetic in the
// samplers auditable against DESIGN.md §6.
const StoredWords = 3

// MaxRecycledCap bounds every scratch or recycled buffer retained between
// batches anywhere in the repository — the public adapters' batch scratch,
// the sharded dispatcher's per-shard dealing buffers and their weight
// halves. Reuse keeps the steady-state batch cadence allocation-free, but a
// one-off huge batch must not pin its oversized backing array for the
// holder's whole lifetime: buffers that grew past this many entries are
// dropped instead of retained.
const MaxRecycledCap = 4096

// Stored is one retained stream element inside a sampler, plus an optional
// per-slot auxiliary payload used by the Section 5 "translation" machinery
// (Theorem 5.1): applications attach suffix counters or watch flags to the
// elements a sampler currently holds via ForEachStored, without the sampler
// knowing anything about the application.
//
// Stored values are heap-allocated once when an element is first picked and
// the pointer is then carried through sample hand-offs (bucket merges,
// chain promotions), so Aux survives exactly as long as the underlying pick
// does — which is precisely the lifetime the estimators need.
type Stored[T any] struct {
	Elem Element[T]
	Aux  any
}

// SlotVisitor enumerates the elements a sampler currently retains.
// Implemented by every sampler that supports the Section 5 application
// layer. The visit order is unspecified; callers must not retain the
// pointers beyond the sampler's next mutation unless they understand the
// sampler's hand-off discipline.
type SlotVisitor[T any] interface {
	ForEachStored(func(*Stored[T]))
}
