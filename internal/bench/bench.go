// Package bench is the experiment harness behind cmd/swbench and the root
// bench_test.go: the paper under reproduction is pure theory, so the
// "tables" are the theorem-shaped experiments E1–E16 catalogued in
// DESIGN.md §4.
//
// Each experiment is a named, self-contained, deterministic function from a
// (seed, scale) configuration to a printed table. cmd/swbench runs them by
// id; the root benchmarks reuse the same workloads for timing.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Config parameterizes one experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical tables.
	Seed uint64
	// Quick shrinks trial counts for CI-speed runs (shapes remain visible,
	// statistical resolution drops).
	Quick bool
	// Out receives the table.
	Out io.Writer
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the DESIGN.md §4 identifier (E1...E16).
	ID string
	// Title is a one-line description.
	Title string
	// Claim names the paper artifact the experiment validates.
	Claim string
	// Run executes the experiment and writes its table to cfg.Out.
	Run func(cfg Config)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in id order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10 numerically: compare by numeric suffix.
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a small aligned-column writer on top of text/tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...string) *table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &table{tw: tw}
	t.row(toAny(headers)...)
	sep := make([]any, len(headers))
	for i, h := range headers {
		sep[i] = dashes(len(h))
	}
	t.row(sep...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.tw, "%.4g", v)
		default:
			fmt.Fprintf(t.tw, "%v", v)
		}
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// banner prints the experiment header.
func banner(cfg Config, e Experiment) {
	fmt.Fprintf(cfg.Out, "\n=== %s: %s\n    claim: %s (seed=%d quick=%v)\n\n", e.ID, e.Title, e.Claim, cfg.Seed, cfg.Quick)
}

// note prints a post-table remark.
func note(cfg Config, format string, args ...any) {
	fmt.Fprintf(cfg.Out, "    note: "+format+"\n", args...)
}
