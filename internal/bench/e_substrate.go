package bench

// E15: substrate table for the exponential-histogram counters — the
// windowed counting machinery (the paper's reference [31]) that the
// Section 5 timestamp-window estimators use as their size oracle. Not a
// claim of the paper under reproduction; included because the estimators'
// error budgets depend on it and DESIGN.md lists it as a built substrate.

import (
	"slidingsample/internal/ehist"
	"slidingsample/internal/stats"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Exponential-histogram counters: error vs memory (substrate)",
		Claim: "DGIM: (1±eps) windowed counts in O(eps^-1 log^2 n) bits; exact counting needs Θ(n)",
		Run:   runE15,
	})
}

func runE15(cfg Config) {
	const n = 1 << 16
	streamLen := 400_000
	if cfg.Quick {
		streamLen = 120_000
	}
	r := xrand.New(cfg.Seed)
	t := newTable(cfg.Out, "eps target", "maxPerSize", "worst rel err", "mean rel err", "peak words", "fullwindow words")
	for _, eps := range []float64{0.5, 0.1, 0.02} {
		c := ehist.NewBitCounterEps(n, eps)
		// Exact oracle: ring of n bits.
		ring := make([]bool, n)
		exact := uint64(0)
		worst, sum, checks := 0.0, 0.0, 0
		gen := r.Split()
		for i := 0; i < streamLen; i++ {
			// Error-rate regime shifts: 1% -> 25% -> 5%.
			var p uint64
			switch {
			case i < streamLen/3:
				p = 100
			case i < 2*streamLen/3:
				p = 4
			default:
				p = 20
			}
			bit := gen.Uint64n(p) == 0
			slot := i % n
			if i >= n && ring[slot] {
				exact--
			}
			ring[slot] = bit
			if bit {
				exact++
			}
			c.Observe(bit)
			if i%997 == 0 && exact > 0 {
				rel := stats.RelErr(float64(c.Estimate()), float64(exact))
				if rel > worst {
					worst = rel
				}
				sum += rel
				checks++
			}
		}
		t.row(eps, int(1/eps)+2, worst, sum/float64(checks), c.MaxWords(), 1+n)
	}
	t.flush()
	note(cfg, "bit stream with regime shifts over a window of n=%d positions; the counter's worst", n)
	note(cfg, "observed error stays within its 1/(maxPerSize-1) guarantee at a tiny fraction of Θ(n) words")
}
