package bench

// E17: the weighted sliding-window substrate (PR-2 tentpole). Not a claim of
// the source paper — the weighted law is the Efraimidis–Spirakis one and the
// estimator is the Cohen–Kaplan bottom-k / Duffield–Lund–Thorup conditional
// Horvitz–Thompson construction (see PAPERS.md) — but it rides on the
// paper's window machinery, so its two engineering claims are regenerated
// with the tables: (a) the windowed subset-sum estimate is unbiased with
// error shrinking in k, and (b) the retained set stays O(k·log n) words in
// expectation, far below the Θ(n) full-window cost. E18 (e_weighted_ts.go)
// is this experiment's timestamp-window counterpart.

import (
	"math"

	"slidingsample/internal/apps"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Weighted window sampling: subset-sum error vs k (substrate)",
		Claim: "ES bottom-k over a sliding window: unbiased HT subset sums in O(k log n) expected words",
		Run:   runE17,
	})
}

func runE17(cfg Config) {
	const (
		n = 4096
		m = 20000
	)
	trials := 400
	if cfg.Quick {
		trials = 120
	}
	weight := func(v uint64) float64 { return float64(v%97) + 1 }
	pred := func(v uint64) bool { return v%3 == 0 }

	// Ground truth from the exact window materializer.
	buf := window.NewSeqBuffer[uint64](n)
	vals := xrand.New(cfg.Seed + 17)
	values := make([]uint64, m)
	for i := range values {
		values[i] = vals.Uint64n(1 << 20)
		buf.Observe(stream.Element[uint64]{Value: values[i], Index: uint64(i)})
	}
	exact := 0.0
	for _, e := range buf.Contents() {
		if pred(e.Value) {
			exact += weight(e.Value)
		}
	}

	t := newTable(cfg.Out, "k", "mean rel err", "rmse rel", "mean words", "peak words", "fullwindow words")
	r := xrand.New(cfg.Seed)
	for _, k := range []int{8, 32, 128} {
		sumErr, sumSq, sumWords, peak := 0.0, 0.0, 0.0, 0
		for tr := 0; tr < trials; tr++ {
			est := apps.NewSubsetSum[uint64](r.Split(), n, k, weight)
			for i, v := range values {
				est.Observe(v, int64(i))
			}
			got, ok := est.Estimate(pred)
			if !ok {
				continue
			}
			rel := got/exact - 1
			sumErr += rel
			sumSq += rel * rel
			sumWords += float64(est.Words())
			if est.MaxWords() > peak {
				peak = est.MaxWords()
			}
		}
		t.row(k, sumErr/float64(trials), math.Sqrt(sumSq/float64(trials)), sumWords/float64(trials), peak, 1+3*n)
	}
	t.flush()
	note(cfg, "windowed subset sum (pred: value %%3 == 0) over n=%d, %d trials per row; mean rel err ~ 0", n, trials)
	note(cfg, "is the unbiasedness claim, rmse shrinks ~1/sqrt(k), words stay O(k log n) vs Θ(n) full window")
}
