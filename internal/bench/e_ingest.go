package bench

// E16: the unified sampler interface (the tentpole refactor). Every
// substrate in the repository — the four core samplers, the five baselines,
// the step-biased extension and the three sharded wrappers — runs behind
// stream.Sampler, and the batched ObserveBatch ingest is sample-path
// identical to looped Observe: two identically seeded instances, one fed
// per element and one fed in irregular batches, finish with identical
// samples, counts and footprints. Not a claim of the paper; it is the
// contract every scaling PR builds on, so it is regenerated with the tables.

import (
	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Unified Sampler interface: substrate sweep + batch/loop equivalence",
		Claim: "refactor invariant — ObserveBatch(batch) ≡ for e in batch { Observe(e) } on every substrate",
		Run:   runE16,
	})
}

// e16Substrate builds one sampler per call so the looped and batched
// instances are identically seeded.
type e16Substrate struct {
	name string
	mk   func(r *xrand.Rand) stream.Sampler[uint64]
}

func e16Substrates() []e16Substrate {
	const (
		n  = 512
		t0 = 64
		k  = 8
		g  = 4
	)
	return []e16Substrate{
		{"core/SeqWR", func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWR[uint64](r, n, k) }},
		{"core/SeqWOR", func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWOR[uint64](r, n, k) }},
		{"core/TSWR", func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWR[uint64](r, t0, k) }},
		{"core/TSWOR", func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWOR[uint64](r, t0, k) }},
		{"baseline/Chain", func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewChain[uint64](r, n, k) }},
		{"baseline/Oversample", func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewOversample[uint64](r, n, k, 2) }},
		{"baseline/Priority", func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewPriority[uint64](r, t0, k) }},
		{"baseline/Skyband", func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewSkyband[uint64](r, t0, k) }},
		{"baseline/FullWindow(seq)", func(r *xrand.Rand) stream.Sampler[uint64] {
			return baseline.NewFullWindowSeq[uint64](r, n).Bind(k, true)
		}},
		{"baseline/FullWindow(ts)", func(r *xrand.Rand) stream.Sampler[uint64] {
			return baseline.NewFullWindowTS[uint64](r, t0).Bind(k, true)
		}},
		{"apps/StepBiased", func(r *xrand.Rand) stream.Sampler[uint64] {
			return apps.NewStepBiased[uint64](r, []uint64{64, 512}, []uint64{3, 1})
		}},
		{"weighted/WOR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return weighted.NewWOR[uint64](r, n, k, e16Weight)
		}},
		{"weighted/WR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return weighted.NewWR[uint64](r, n, k, e16Weight)
		}},
		{"weighted/TSWOR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return weighted.NewTSWOR[uint64](r, t0, k, 0.05, e16Weight)
		}},
		{"weighted/TSWR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return weighted.NewTSWR[uint64](r, t0, k, 0.05, e16Weight)
		}},
		{"parallel/ShardedSeqWR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedSeqWR[uint64](r, n, g, k)
		}},
		{"parallel/ShardedTSWR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedTSWR[uint64](r, t0, g, k, 0.05)
		}},
		{"parallel/ShardedTSWOR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedTSWOR[uint64](r, t0, g, k, 0.05)
		}},
		{"parallel/ShardedWeightedSeqWOR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedWeightedSeqWOR[uint64](r, n, g, k, 0.05, e16Weight)
		}},
		{"parallel/ShardedWeightedSeqWR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedWeightedSeqWR[uint64](r, n, g, k, 0.05, e16Weight)
		}},
		{"parallel/ShardedWeightedTSWOR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedWeightedTSWOR[uint64](r, t0, g, k, 0.05, e16Weight)
		}},
		{"parallel/ShardedWeightedTSWR", func(r *xrand.Rand) stream.Sampler[uint64] {
			return parallel.NewShardedWeightedTSWR[uint64](r, t0, g, k, 0.05, e16Weight)
		}},
	}
}

// e16Weight is the weighted substrates' deterministic weight law.
func e16Weight(v uint64) float64 { return float64(v%9) + 1 }

// e16Sync flushes sharded samplers before a query; every other substrate is
// already consistent.
func e16Sync(s stream.Sampler[uint64]) {
	if b, ok := s.(interface{ Barrier() }); ok {
		b.Barrier()
	}
}

func e16Close(s stream.Sampler[uint64]) {
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}
}

func runE16(cfg Config) {
	streamLen := 30_000
	if cfg.Quick {
		streamLen = 8_000
	}
	// A bursty timestamped stream shared by every substrate (sequence-based
	// samplers carry the timestamps through without interpreting them).
	arrivals := burstyTimestamps(cfg.Seed+16, streamLen)

	t := newTable(cfg.Out, "sampler", "k", "count", "words", "peak words", "batch==loop")
	for _, sub := range e16Substrates() {
		loop := sub.mk(xrand.New(cfg.Seed))
		batch := sub.mk(xrand.New(cfg.Seed))

		for i, ts := range arrivals {
			loop.Observe(uint64(i), ts)
		}
		// Irregular batch sizes, including size-1 and bucket-straddling runs.
		buf := make([]stream.Element[uint64], 0, 512)
		sizes := []int{1, 7, 64, 3, 256, 1, 129}
		for i := 0; i < streamLen; {
			sz := sizes[i%len(sizes)]
			if i+sz > streamLen {
				sz = streamLen - i
			}
			buf = buf[:0]
			for j := 0; j < sz; j++ {
				buf = append(buf, stream.Element[uint64]{Value: uint64(i + j), TS: arrivals[i+j]})
			}
			batch.ObserveBatch(buf)
			i += sz
		}

		e16Sync(loop)
		e16Sync(batch)
		la, lok := loop.Sample()
		ba, bok := batch.Sample()
		equal := lok == bok && len(la) == len(ba) &&
			loop.Count() == batch.Count() && loop.Words() == batch.Words() &&
			loop.MaxWords() == batch.MaxWords()
		if equal {
			for i := range la {
				if la[i] != ba[i] {
					equal = false
					break
				}
			}
		}
		t.row(sub.name, loop.K(), loop.Count(), loop.Words(), loop.MaxWords(), equal)
		e16Close(loop)
		e16Close(batch)
	}
	t.flush()
	note(cfg, "each row: two identically seeded instances, one fed per element, one in irregular batches")
	note(cfg, "(sizes 1..256, straddling bucket boundaries); equal seeds must give identical samples")
}
