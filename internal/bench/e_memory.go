package bench

import (
	"math"

	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/stats"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// seedsFor returns the per-trial seeds used for the randomized baselines
// (their memory is a random variable; ours must not be).
func seedsFor(cfg Config, n int) []uint64 {
	out := make([]uint64, n)
	r := xrand.New(cfg.Seed)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Sequence-based sampling with replacement: memory words",
		Claim: "Theorem 2.1 — O(k) deterministic vs chain sampling's randomized bound",
		Run:   runE1,
	})
}

func runE1(cfg Config) {
	streamLen := 1_000_000
	seeds := 12
	if cfg.Quick {
		streamLen = 100_000
		seeds = 6
	}
	t := newTable(cfg.Out, "n", "k", "ours_peak(all seeds)", "chain_peak_med", "chain_peak_max", "fullwindow", "ours/chain_max")
	for _, n := range []uint64{1_000, 10_000, 100_000} {
		for _, k := range []int{1, 16, 64} {
			var oursPeaks, chainPeaks []float64
			for _, seed := range seedsFor(cfg, seeds) {
				r := xrand.New(seed)
				ours := core.NewSeqWR[uint64](r.Split(), n, k)
				chain := baseline.NewChain[uint64](r.Split(), n, k)
				for i := 0; i < streamLen; i++ {
					ours.Observe(uint64(i), int64(i))
					chain.Observe(uint64(i), int64(i))
				}
				oursPeaks = append(oursPeaks, float64(ours.MaxWords()))
				chainPeaks = append(chainPeaks, float64(chain.MaxWords()))
			}
			full := 1 + int(n)*stream.StoredWords
			t.row(n, k,
				int(oursPeaks[0]),
				stats.Median(chainPeaks),
				stats.Quantile(chainPeaks, 1),
				full,
				oursPeaks[0]/stats.Quantile(chainPeaks, 1),
			)
		}
	}
	t.flush()
	note(cfg, "ours_peak is identical across seeds (deterministic); chain peaks vary per seed and grow with stream length")
	note(cfg, "stream length %d, %d seeds per row", streamLen, seeds)
}

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Sequence-based sampling without replacement: memory + failure rate",
		Claim: "Theorem 2.2 — O(k) deterministic vs over-sampling cost and failures",
		Run:   runE2,
	})
}

func runE2(cfg Config) {
	const n = 10_000
	streamLen := 200_000
	if cfg.Quick {
		streamLen = 40_000
	}
	t := newTable(cfg.Out, "k", "ours_peak", "factor", "oversample_peak", "fail_rate")
	for _, k := range []int{4, 16, 64} {
		r := xrand.New(cfg.Seed)
		ours := core.NewSeqWOR[uint64](r.Split(), n, k)
		for i := 0; i < streamLen; i++ {
			ours.Observe(uint64(i), int64(i))
		}
		for _, factor := range []int{1, 2, 4, 8} {
			o := baseline.NewOversample[uint64](xrand.New(cfg.Seed+uint64(factor)), n, k, factor)
			for i := 0; i < streamLen; i++ {
				o.Observe(uint64(i), int64(i))
				if i%1000 == 999 {
					o.Sample()
				}
			}
			failRate := float64(o.Failures()) / float64(o.Queries())
			t.row(k, ours.MaxWords(), factor, o.MaxWords(), failRate)
		}
	}
	t.flush()
	note(cfg, "over-sampling pays factor*k memory AND still fails with positive probability; ours is k-linear and never fails")
}

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Timestamp-based sampling with replacement: memory words",
		Claim: "Theorem 3.9 — Θ(k log n) deterministic vs priority sampling's randomized bound",
		Run:   runE3,
	})
}

// burstyTimestamps builds a deterministic-but-irregular arrival sequence.
func burstyTimestamps(seed uint64, n int) []int64 {
	r := xrand.New(seed)
	arr := stream.NewBurstyArrivals(r, 16, 4)
	out := make([]int64, n)
	for i := range out {
		out[i] = arr.Next()
	}
	return out
}

func runE3(cfg Config) {
	streamLen := 200_000
	seeds := 10
	if cfg.Quick {
		streamLen = 50_000
		seeds = 5
	}
	const t0 = 512
	arrivals := burstyTimestamps(cfg.Seed, streamLen)
	t := newTable(cfg.Out, "k", "ours_peak(all seeds)", "theory 4+(2lg N+3)*bs(k)", "prio_peak_med", "prio_peak_max")
	for _, k := range []int{1, 4, 16} {
		var oursPeaks, prioPeaks []float64
		for _, seed := range seedsFor(cfg, seeds) {
			r := xrand.New(seed)
			ours := core.NewTSWR[uint64](r.Split(), t0, k)
			prio := baseline.NewPriority[uint64](r.Split(), t0, k)
			for i, ts := range arrivals {
				ours.Observe(uint64(i), ts)
				prio.Observe(uint64(i), ts)
			}
			oursPeaks = append(oursPeaks, float64(ours.MaxWords()))
			prioPeaks = append(prioPeaks, float64(prio.MaxWords()))
		}
		lg := int(math.Log2(float64(streamLen)))
		theory := 4 + (2*lg+3)*(4+6*k)
		t.row(k, int(oursPeaks[0]), theory, stats.Median(prioPeaks), stats.Quantile(prioPeaks, 1))
	}
	t.flush()
	note(cfg, "bursty arrivals, horizon t0=%d, stream length %d; bs(k)=4+6k words per bucket structure", t0, streamLen)
	note(cfg, "ours never exceeds the printed deterministic bound; priority peaks drift across seeds")
}

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Lower bound exhibit: the doubling adversary forces Ω(log n) memory",
		Claim: "Lemma 3.10 — any correct sampler retains ~t0/2 candidates; our bound matches at Θ(log n)",
		Run:   runE4,
	})
}

func runE4(cfg Config) {
	seeds := 12
	if cfg.Quick {
		seeds = 5
	}
	t := newTable(cfg.Out, "t0", "log2(n)", "E[retained] theory >=", "priority_retained_avg", "ours_peak_words")
	for _, t0 := range []int{5, 6, 7, 8, 9, 10} {
		adv := stream.NewDoublingArrivals(t0, 0)
		// Total elements through tick 2*t0, then stop (the paper's argument
		// measures memory at the moment the big bursts have just expired).
		var arrivals []int64
		total := uint64(1)<<(2*t0+1) - 1
		for i := uint64(0); i < total; i++ {
			arrivals = append(arrivals, adv.Next())
		}
		var retained []float64
		for _, seed := range seedsFor(cfg, seeds) {
			prio := baseline.NewPriority[uint64](xrand.New(seed), int64(t0), 1)
			for i, ts := range arrivals {
				prio.Observe(uint64(i), ts)
			}
			retained = append(retained, float64(prio.RetainedLens()[0]))
		}
		// Our sampler's structure is deterministic — one run suffices.
		ours := core.NewTSWR[uint64](xrand.New(cfg.Seed), int64(t0), 1)
		for i, ts := range arrivals {
			ours.Observe(uint64(i), ts)
		}
		// Active count at the end is sum of last t0 bursts ~ 2^(t0+1).
		logn := t0 + 1
		t.row(t0, logn, float64(t0+1)/2, stats.Mean(retained), ours.MaxWords())
	}
	t.flush()
	note(cfg, "the adversary emits 2^(2t0-i) elements at tick i; each tick's burst is picked as the retained")
	note(cfg, "candidate with p>1/2 (paper's calculation), so ~t0/2 = Θ(log n) distinct candidates are live —")
	note(cfg, "a lower bound exhibited by priority sampling's retained set; our structure is Θ(log n) too (optimal)")
}

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Timestamp-based sampling without replacement: memory words",
		Claim: "Theorem 4.4 — O(k log n) deterministic vs Gemulla–Lehner skyband's randomized bound",
		Run:   runE5,
	})
}

func runE5(cfg Config) {
	streamLen := 100_000
	seeds := 8
	if cfg.Quick {
		streamLen = 30_000
		seeds = 4
	}
	const t0 = 512
	arrivals := burstyTimestamps(cfg.Seed+7, streamLen)
	t := newTable(cfg.Out, "k", "ours_peak(all seeds)", "skyband_peak_med", "skyband_peak_max")
	for _, k := range []int{4, 16, 64} {
		var oursPeaks, skyPeaks []float64
		for _, seed := range seedsFor(cfg, seeds) {
			r := xrand.New(seed)
			ours := core.NewTSWOR[uint64](r.Split(), t0, k)
			sky := baseline.NewSkyband[uint64](r.Split(), t0, k)
			for i, ts := range arrivals {
				ours.Observe(uint64(i), ts)
				sky.Observe(uint64(i), ts)
			}
			oursPeaks = append(oursPeaks, float64(ours.MaxWords()))
			skyPeaks = append(skyPeaks, float64(sky.MaxWords()))
		}
		t.row(k, int(oursPeaks[0]), stats.Median(skyPeaks), stats.Quantile(skyPeaks, 1))
	}
	t.flush()
	note(cfg, "bursty arrivals, horizon t0=%d, stream length %d", t0, streamLen)
}
