package bench

import (
	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stats"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Frequency moments over sliding windows (AMS via window sampling)",
		Claim: "Corollary 5.2 — sampler replacement preserves the estimator; error shrinks with copies",
		Run:   runE8,
	})
}

func runE8(cfg Config) {
	const n = 4096
	const m = 3 * n
	runs := 12
	if cfg.Quick {
		runs = 5
	}
	t := newTable(cfg.Out, "moment", "zipf s", "copies(s1xs2)", "rel_err_mean", "rel_err_p90")
	r := xrand.New(cfg.Seed)
	for _, p := range []int{2, 3} {
		for _, zs := range []float64{1.1, 1.5} {
			zr := r.Split()
			zipf := stream.NewZipfValues(zr, zs, 64)
			values := make([]uint64, m)
			for i := range values {
				values[i] = zipf.Next()
			}
			exact := apps.ExactMoment(values[m-n:], p)
			for _, copies := range [][2]int{{8, 3}, {16, 5}, {48, 5}} {
				s1, s2 := copies[0], copies[1]
				var errs []float64
				for run := 0; run < runs; run++ {
					est := apps.NewMoments(apps.SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, s1*s2)), p, s1, s2)
					for i, v := range values {
						est.Observe(v, int64(i))
					}
					got, ok := est.EstimateAt(0)
					if !ok {
						continue
					}
					errs = append(errs, stats.RelErr(got, exact))
				}
				t.row(p, zs, s1*s2, stats.Mean(errs), stats.Quantile(errs, 0.9))
			}
		}
	}
	t.flush()
	note(cfg, "window n=%d of a length-%d Zipf stream; exact F_p computed from the materialized window", n, m)
}

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Triangle counting over a sliding window of graph edges",
		Claim: "Corollary 5.3 — windowed Buriol-style estimator via window sampling",
		Run:   runE9,
	})
}

// plantedEdges builds an edge stream over V vertices in which triangles are
// planted continuously (triples of consecutive edges closing a triangle)
// between random noise edges.
func plantedEdges(r *xrand.Rand, v uint64, m int, triangleEvery int) []apps.Edge {
	out := make([]apps.Edge, 0, m)
	for len(out) < m {
		if triangleEvery > 0 && len(out)%triangleEvery == 0 {
			a := r.Uint64n(v)
			b := (a + 1 + r.Uint64n(v-2)) % v
			c := (b + 1 + r.Uint64n(v-2)) % v
			if a == b || b == c || a == c {
				continue
			}
			out = append(out, apps.Edge{U: a, V: b}, apps.Edge{U: b, V: c}, apps.Edge{U: a, V: c})
			continue
		}
		a := r.Uint64n(v)
		b := r.Uint64n(v)
		if a == b {
			continue
		}
		out = append(out, apps.Edge{U: a, V: b})
	}
	return out[:m]
}

func runE9(cfg Config) {
	// Geometry matters: the edge universe C(V,2) must dwarf the window so
	// duplicate edges (which break the earliest-edge identity and the
	// deduplicated ground truth) stay rare, while planted triangles keep
	// T3/(n(V-2)) large enough for the estimator's variance to be usable.
	const v = 128
	const n = 512
	const m = 2 * n
	runs := 6
	if cfg.Quick {
		runs = 3
	}
	r := xrand.New(cfg.Seed)
	es := plantedEdges(r.Split(), v, m, 4)
	windowEdges := es[m-n:]
	exact := float64(apps.ExactTriangles(windowEdges))
	t := newTable(cfg.Out, "copies", "exact_T3", "est_mean", "rel_err_mean", "rel_err_p90")
	for _, copies := range []int{512, 2048, 8192} {
		var ests, errs []float64
		for run := 0; run < runs; run++ {
			tr := apps.NewTriangles(r.Split(), n, v, copies)
			for i, e := range es {
				tr.Observe(e, int64(i))
			}
			got, ok := tr.EstimateAt(0)
			if !ok {
				continue
			}
			ests = append(ests, got)
			errs = append(errs, stats.RelErr(got, exact))
		}
		t.row(copies, exact, stats.Mean(ests), stats.Mean(errs), stats.Quantile(errs, 0.9))
	}
	t.flush()
	note(cfg, "V=%d vertices, window of n=%d edges, triangles planted every 4 edges; the estimator's", v, n)
	note(cfg, "variance ~ n(V-2)/T3 per copy forces thousands of copies — the known cost of the Buriol-style")
	note(cfg, "estimator; the point of Corollary 5.3 is that window sampling preserves it with deterministic memory")
}

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Entropy over sliding windows (sequence and timestamp windows)",
		Claim: "Corollary 5.4 — deterministic-memory windowed entropy estimation",
		Run:   runE10,
	})
}

func runE10(cfg Config) {
	runs := 10
	if cfg.Quick {
		runs = 4
	}
	t := newTable(cfg.Out, "window", "copies", "exact_H", "est_mean", "abs_err_mean")
	r := xrand.New(cfg.Seed)

	// Sequence window.
	{
		const n = 2048
		const m = 3 * n
		zipf := stream.NewZipfValues(r.Split(), 1.2, 32)
		values := make([]uint64, m)
		for i := range values {
			values[i] = zipf.Next()
		}
		exact := apps.ExactEntropy(values[m-n:])
		for _, copies := range [][2]int{{10, 4}, {30, 5}} {
			s1, s2 := copies[0], copies[1]
			var ests []float64
			for run := 0; run < runs; run++ {
				est := apps.NewEntropy(apps.SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, s1*s2)), s1, s2)
				for i, v := range values {
					est.Observe(v, int64(i))
				}
				if got, ok := est.EstimateAt(0); ok {
					ests = append(ests, got)
				}
			}
			absErr := 0.0
			for _, e := range ests {
				absErr += abs(e - exact)
			}
			t.row("seq n=2048", s1*s2, exact, stats.Mean(ests), absErr/float64(len(ests)))
		}
	}

	// Timestamp window with the exponential-histogram size oracle.
	{
		const t0 = 256
		const m = 6000
		zipf := stream.NewZipfValues(r.Split(), 1.2, 32)
		arr := stream.NewBurstyArrivals(r.Split(), 8, 3)
		values := make([]uint64, m)
		tss := make([]int64, m)
		for i := range values {
			values[i] = zipf.Next()
			tss[i] = arr.Next()
		}
		// Ground truth window content at the end.
		buf := window.NewTSBuffer[uint64](t0)
		for i := range values {
			buf.Observe(stream.Element[uint64]{Value: values[i], Index: uint64(i), TS: tss[i]})
		}
		var content []uint64
		for _, e := range buf.Contents() {
			content = append(content, e.Value)
		}
		exact := apps.ExactEntropy(content)
		for _, copies := range [][2]int{{10, 4}, {30, 5}} {
			s1, s2 := copies[0], copies[1]
			var ests []float64
			for run := 0; run < runs; run++ {
				eh := ehist.NewEps(t0, 0.05)
				s := core.NewTSWR[uint64](r.Split(), t0, s1*s2)
				est := apps.NewEntropy(apps.TSWRSource(s, eh.SizeOracle()), s1, s2)
				for i := range values {
					est.Observe(values[i], tss[i])
					eh.Observe(tss[i])
				}
				if got, ok := est.EstimateAt(tss[m-1]); ok {
					ests = append(ests, got)
				}
			}
			absErr := 0.0
			for _, e := range ests {
				absErr += abs(e - exact)
			}
			t.row("ts t0=256 (ehist size)", s1*s2, exact, stats.Mean(ests), absErr/float64(len(ests)))
		}
	}
	t.flush()
	note(cfg, "entropy in bits; the timestamp variant scales by a (1±0.05) window-size estimate (internal/ehist), since exact n(t) is impossible in sublinear space")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Step-biased sampling from nested windows",
		Claim: "Section 5 closing — step bias functions from combined window samplers",
		Run:   runE12,
	})
}

func runE12(cfg Config) {
	trials := 200000
	if cfg.Quick {
		trials = 50000
	}
	r := xrand.New(cfg.Seed)
	const total = 64
	lens := []uint64{8, 32}
	weights := []uint64{3, 1}
	counts := make([]int, 32)
	// A fresh sampler per trial: the retained samples only change on
	// arrivals, so measuring the age law requires independent runs.
	for tr := 0; tr < trials; tr++ {
		b := apps.NewStepBiased[uint64](r, lens, weights)
		for i := 0; i < total; i++ {
			b.Observe(uint64(i), int64(i))
		}
		got, ok := b.Sample()
		if !ok {
			continue
		}
		counts[uint64(total-1)-got[0].Index]++
	}
	ref := apps.NewStepBiased[uint64](r, lens, weights)
	for i := 0; i < total; i++ {
		ref.Observe(uint64(i), int64(i))
	}
	expected := make([]float64, 32)
	for d := range expected {
		expected[d] = ref.Prob(uint64(d)) * float64(trials)
	}
	chi, p, _ := stats.ChiSquareExpected(counts, expected)
	t := newTable(cfg.Out, "age band", "draws", "expected", "")
	bands := [][2]int{{0, 8}, {8, 32}}
	for _, band := range bands {
		got, want := 0, 0.0
		for d := band[0]; d < band[1]; d++ {
			got += counts[d]
			want += expected[d]
		}
		t.row(fmtBand(band), got, want, "")
	}
	t.flush()
	note(cfg, "steps: last %v with weights %v; chi2 against the exact step law = %.2f (p=%.3f)", lens, weights, chi, p)
}

func fmtBand(b [2]int) string {
	return "[" + itoa(b[0]) + "," + itoa(b[1]) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
