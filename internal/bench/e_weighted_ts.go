package bench

// E18: the weighted TIMESTAMP-window substrate (PR-3 tentpole). The
// Efraimidis–Spirakis suffix-top-k retention of E17 carries over to "the
// last t0 ticks" windows, where n(t) is data-dependent and only
// approximable (the paper's Section 3 negative result, citing [31]); each
// sampler embeds a DGIM exponential-histogram counter for the effective
// window size. The experiment regenerates three engineering claims:
// (a) the windowed subset-sum estimate stays unbiased with error shrinking
// in k when queried at a wall-clock time PAST the last arrival (query-time
// expiry, the serving read path), (b) the retained set plus the embedded
// counter stays far below the Θ(n) full-window cost, and (c) the reported
// effective size n(t) lands within the counter's (1±eps) bound.

import (
	"math"

	"slidingsample/internal/apps"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Weighted timestamp windows: subset-sum error + effective size (substrate)",
		Claim: "ES suffix-top-k + ehist: unbiased HT subset sums over the last t0 ticks in O(k log n + eps^-1 log^2 n) expected words",
		Run:   runE18,
	})
}

func runE18(cfg Config) {
	const (
		t0  = 2048
		m   = 20000
		eps = 0.05
	)
	trials := 400
	if cfg.Quick {
		trials = 120
	}
	weight := func(v uint64) float64 { return float64(v%97) + 1 }
	pred := func(v uint64) bool { return v%3 == 0 }

	// A bursty timestamped stream; the query lands t0/4 ticks after the
	// last arrival, so a quarter-window of elements expires by clock
	// advancement alone before any estimate is read.
	arrivals := burstyTimestamps(cfg.Seed+18, m)
	queryAt := arrivals[m-1] + t0/4

	vals := xrand.New(cfg.Seed + 17)
	values := make([]uint64, m)
	buf := window.NewTSBuffer[uint64](t0)
	for i := range values {
		values[i] = vals.Uint64n(1 << 20)
		buf.Observe(stream.Element[uint64]{Value: values[i], Index: uint64(i), TS: arrivals[i]})
	}
	buf.AdvanceTo(queryAt)
	exact, nTrue := 0.0, float64(buf.Len())
	for _, e := range buf.Contents() {
		if pred(e.Value) {
			exact += weight(e.Value)
		}
	}

	t := newTable(cfg.Out, "k", "mean rel err", "rmse rel", "size rel err", "mean words", "peak words", "fullwindow words")
	r := xrand.New(cfg.Seed)
	for _, k := range []int{8, 32, 128} {
		sumErr, sumSq, sumWords, sizeErr, peak := 0.0, 0.0, 0.0, 0.0, 0
		for tr := 0; tr < trials; tr++ {
			est := apps.NewSubsetSumTS[uint64](r.Split(), t0, k, eps, weight)
			for i, v := range values {
				est.Observe(v, arrivals[i])
			}
			got, ok := est.EstimateAt(queryAt, pred)
			if !ok {
				continue
			}
			rel := got/exact - 1
			sumErr += rel
			sumSq += rel * rel
			sumWords += float64(est.Words())
			sizeErr += math.Abs(float64(est.SizeAt(queryAt))/nTrue - 1)
			if est.MaxWords() > peak {
				peak = est.MaxWords()
			}
		}
		t.row(k, sumErr/float64(trials), math.Sqrt(sumSq/float64(trials)),
			sizeErr/float64(trials), sumWords/float64(trials), peak, 1+3*int(nTrue))
	}
	t.flush()
	note(cfg, "windowed subset sum (pred: value %%3 == 0) over the last t0=%d ticks, queried t0/4 past", t0)
	note(cfg, "the last arrival (n(t)=%d after query-time expiry), %d trials per row; mean rel err ~ 0", int(nTrue), trials)
	note(cfg, "is unbiasedness, rmse shrinks ~1/sqrt(k), size rel err stays within the counter's eps=%.2f", eps)
}
