package bench

// E19: sharded weighted timestamp windows (PR-4 tentpole). The weighted
// substrate of E17/E18 goes G-way parallel: round-robin dealing puts each
// shard's active window exactly on its slice, per-shard Efraimidis–
// Spirakis log-keys are globally comparable so the merged top-k IS the
// window's weighted WOR sample (exact — no cross-shard estimate on the
// sample path), and the dispatcher keeps one exponential histogram over
// WEIGHTS per shard as the (1±eps) scale/pick oracle. The experiment
// regenerates three engineering claims: (a) the sharded subset-sum
// estimate — HT over the exact merged top-(k+1) — stays unbiased with
// error shrinking in k at a query past the last arrival, matching the
// unsharded E18 law; (b) each per-shard weight oracle, their total, and
// the size oracle land within (1±eps) of ground truth; (c) the whole
// G-shard stack stays far below the Θ(n) full-window cost.

import (
	"math"

	"slidingsample/internal/apps"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Sharded weighted timestamp windows: exact cross-shard WOR + weight oracles (parallel)",
		Claim: "per-shard ES skybands merge into the exact weighted WOR law; ehist-over-weights gives (1±eps) per-shard totals",
		Run:   runE19,
	})
}

func runE19(cfg Config) {
	const (
		t0  = 2048
		m   = 20000
		g   = 4
		eps = 0.05
	)
	trials := 200
	if cfg.Quick {
		trials = 60
	}
	weight := func(v uint64) float64 { return float64(v%97) + 1 }
	pred := func(v uint64) bool { return v%3 == 0 }

	// The E18 stream shape: bursty arrivals, query t0/4 ticks past the
	// last arrival (a quarter-window expires by clock advancement alone).
	arrivals := burstyTimestamps(cfg.Seed+19, m)
	queryAt := arrivals[m-1] + t0/4

	vals := xrand.New(cfg.Seed + 17)
	values := make([]uint64, m)
	buf := window.NewTSBuffer[uint64](t0)
	for i := range values {
		values[i] = vals.Uint64n(1 << 20)
		buf.Observe(stream.Element[uint64]{Value: values[i], Index: uint64(i), TS: arrivals[i]})
	}
	buf.AdvanceTo(queryAt)
	exact, wTrue, nTrue := 0.0, 0.0, float64(buf.Len())
	shardTrue := make([]float64, g)
	for _, e := range buf.Contents() {
		w := weight(e.Value)
		wTrue += w
		shardTrue[e.Index%g] += w
		if pred(e.Value) {
			exact += w
		}
	}

	// (a) Sharded subset-sum accuracy vs k — unbiased, rmse ~ 1/sqrt(k),
	// same law as the unsharded E18 battery because the merged top-(k+1)
	// is exact.
	t := newTable(cfg.Out, "k", "mean rel err", "rmse rel", "weight rel err", "mean words", "peak words", "fullwindow words")
	r := xrand.New(cfg.Seed)
	for _, k := range []int{8, 32, 128} {
		sumErr, sumSq, sumWords, wErr, peak := 0.0, 0.0, 0.0, 0.0, 0
		for tr := 0; tr < trials; tr++ {
			est := apps.NewShardedSubsetSumTS[uint64](r.Split(), t0, g, k, eps, weight)
			for i, v := range values {
				est.Observe(v, arrivals[i])
			}
			est.Barrier()
			got, ok := est.EstimateAt(queryAt, pred)
			if !ok {
				est.Close()
				continue
			}
			rel := got/exact - 1
			sumErr += rel
			sumSq += rel * rel
			sumWords += float64(est.Words())
			wErr += math.Abs(est.WeightAt(queryAt)/wTrue - 1)
			if est.MaxWords() > peak {
				peak = est.MaxWords()
			}
			est.Close()
		}
		t.row(k, sumErr/float64(trials), math.Sqrt(sumSq/float64(trials)),
			wErr/float64(trials), sumWords/float64(trials), peak, 1+3*int(nTrue))
	}
	t.flush()

	// (b) The per-shard weight oracles against each shard slice's ground
	// truth (the acceptance claim: every shard within (1±eps)).
	s := parallel.NewShardedWeightedTSWOR[uint64](xrand.New(cfg.Seed+21), t0, g, 8, eps, weight)
	for i, v := range values {
		s.Observe(v, arrivals[i])
	}
	s.Barrier()
	maxShardErr := 0.0
	for shard, got := range s.ShardWeightsAt(queryAt) {
		if shardTrue[shard] == 0 {
			continue
		}
		if rel := math.Abs(got/shardTrue[shard] - 1); rel > maxShardErr {
			maxShardErr = rel
		}
	}
	totErr := math.Abs(s.TotalWeightAt(queryAt)/wTrue - 1)
	sizeErr := math.Abs(float64(s.SizeAt(queryAt))/nTrue - 1)
	s.Close()

	note(cfg, "sharded (g=%d) windowed subset sum over the last t0=%d ticks, queried t0/4 past the last", g, t0)
	note(cfg, "arrival (n(t)=%d); mean rel err ~ 0 is unbiasedness of the HT estimate over the EXACT", int(nTrue))
	note(cfg, "merged top-(k+1); rmse shrinks ~1/sqrt(k) as in the unsharded E18")
	note(cfg, "weight oracles at the query: max per-shard rel err %.4f, total %.4f, size %.4f (eps=%.2f)", maxShardErr, totErr, sizeErr, eps)
}
