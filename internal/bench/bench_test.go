package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("position %d: %s, want %s (ordering broken)", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s is missing metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E7")
	if !ok || e.ID != "E7" {
		t.Fatal("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}

func TestExpNum(t *testing.T) {
	if expNum("E2") != 2 || expNum("E14") != 14 || expNum("Exyz") != 0 {
		t.Fatal("expNum broken")
	}
}

// TestFastExperimentsProduceTables actually runs the cheap experiments in
// quick mode and sanity-checks their output.
func TestFastExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical experiments skipped in -short mode")
	}
	cases := map[string][]string{
		"E7":  {"chi2(indep)", "p-value"},
		"E13": {"rank err", "words"},
	}
	for id, wantHeaders := range cases {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var buf bytes.Buffer
		e.Run(Config{Seed: 1, Quick: true, Out: &buf})
		out := buf.String()
		if len(out) == 0 {
			t.Fatalf("%s produced no output", id)
		}
		for _, h := range wantHeaders {
			if !strings.Contains(out, h) {
				t.Errorf("%s output missing header %q:\n%s", id, h, out)
			}
		}
		if !strings.Contains(out, "note:") {
			t.Errorf("%s output has no explanatory note", id)
		}
	}
}

// TestDeterministicOutput: the same (seed, quick) config must print the
// same bytes — the reproducibility contract of DESIGN.md §4.
func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical experiments skipped in -short mode")
	}
	e, _ := ByID("E13")
	run := func() string {
		var buf bytes.Buffer
		e.Run(Config{Seed: 5, Quick: true, Out: &buf})
		return buf.String()
	}
	if run() != run() {
		t.Fatal("experiment output not deterministic for a fixed seed")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable(&buf, "alpha", "beta")
	tb.row(1, 2.5)
	tb.row("x", "y")
	tb.flush()
	out := buf.String()
	for _, want := range []string{"alpha", "beta", "-----", "2.5", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestSeedsFor(t *testing.T) {
	a := seedsFor(Config{Seed: 3}, 5)
	b := seedsFor(Config{Seed: 3}, 5)
	if len(a) != 5 {
		t.Fatal("wrong count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seedsFor not deterministic")
		}
	}
	c := seedsFor(Config{Seed: 4}, 5)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 5 {
		t.Fatal("different master seeds gave identical trial seeds")
	}
}

func TestSqrtf(t *testing.T) {
	for _, x := range []float64{0, 0.25, 1, 2, 100} {
		got := sqrtf(x)
		if x == 0 && got != 0 {
			t.Fatal("sqrtf(0) != 0")
		}
		if x > 0 {
			if d := got*got - x; d > 1e-9 || d < -1e-9 {
				t.Fatalf("sqrtf(%v) = %v", x, got)
			}
		}
	}
}

func TestItoaAndBand(t *testing.T) {
	if itoa(0) != "0" || itoa(42) != "42" || itoa(12345678) != "12345678" {
		t.Fatal("itoa broken")
	}
	if fmtBand([2]int{3, 17}) != "[3,17)" {
		t.Fatal("fmtBand broken")
	}
}
