package bench

// E13/E14: extension experiments beyond the paper's explicit corollaries —
// two more sampling-based algorithms run through the Theorem 5.1
// translation (windowed quantiles and windowed heavy hitters). They are the
// "any sampling-based algorithm" claim exercised on algorithms the paper
// did not name.

import (
	"slidingsample/internal/apps"
	"slidingsample/internal/stats"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Windowed quantiles from a WOR sample (Theorem 5.1 extension)",
		Claim: "sample-quantile rank error ~ n/sqrt(k), with Theorem 2.2's deterministic memory",
		Run:   runE13,
	})
}

func runE13(cfg Config) {
	const n = 4096
	const m = 3 * n
	runs := 40
	if cfg.Quick {
		runs = 15
	}
	r := xrand.New(cfg.Seed)
	gen := stream.NewUniformValues(r.Split(), 1_000_000)
	values := make([]uint64, m)
	for i := range values {
		values[i] = gen.Next()
	}
	windowVals := values[m-n:]
	t := newTable(cfg.Out, "k", "q", "mean |rank err|/n", "theory ~ sqrt(q(1-q)/k)", "words")
	for _, k := range []int{64, 256, 1024} {
		for _, q := range []float64{0.5, 0.95} {
			var errs []float64
			words := 0
			for run := 0; run < runs; run++ {
				est := apps.NewQuantiles(r.Split(), n, k)
				for i, v := range values {
					est.Observe(v, int64(i))
				}
				got, ok := est.Query(q)
				if !ok {
					continue
				}
				rank := float64(apps.ExactRank(windowVals, got))
				errs = append(errs, stats.RelErr(rank, q*n)*q) // |rank-qn|/n
				words = est.Words()
			}
			theory := sqrtf(q * (1 - q) / float64(k))
			t.row(k, q, stats.Mean(errs), theory, words)
		}
	}
	t.flush()
	note(cfg, "window n=%d of uniform values; rank error normalized by n; memory Θ(k) words, deterministic", n)
}

func sqrtf(x float64) float64 {
	// tiny local sqrt to keep imports minimal
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Windowed heavy hitters from a WR sample (Theorem 5.1 extension)",
		Claim: "values with frequency >= phi*n detected; <= (phi-eps)*n rejected",
		Run:   runE14,
	})
}

func runE14(cfg Config) {
	const n = 8192
	const m = 2 * n
	runs := 30
	if cfg.Quick {
		runs = 10
	}
	const hot = uint64(999_999)
	const warm = uint64(888_888)
	r := xrand.New(cfg.Seed)
	t := newTable(cfg.Out, "k", "phi", "eps", "recall(hot 25%)", "false_pos(warm 5%)", "words")
	for _, k := range []int{100, 400, 1600} {
		gen := stream.NewUniformValues(r.Split(), 100_000)
		values := make([]uint64, m)
		for i := range values {
			switch {
			case i%4 == 0:
				values[i] = hot // 25% of the window
			case i%20 == 1:
				values[i] = warm // 5% of the window
			default:
				values[i] = gen.Next()
			}
		}
		const phi, eps = 0.2, 0.1
		hits, falsePos := 0, 0
		words := 0
		for run := 0; run < runs; run++ {
			h := apps.NewHeavyHitters(r.Split(), n, k)
			for i, v := range values {
				h.Observe(v, int64(i))
			}
			got, ok := h.Report(phi, eps)
			if !ok {
				continue
			}
			for _, v := range got {
				if v == hot {
					hits++
				}
				if v == warm {
					falsePos++
				}
			}
			words = h.Words()
		}
		t.row(k, phi, eps, float64(hits)/float64(runs), float64(falsePos)/float64(runs), words)
	}
	t.flush()
	note(cfg, "window n=%d; hot value at 25%% must be found (phi=0.2), warm value at 5%% must be rejected (phi-eps=0.1)", n)
}
