package bench

import (
	"slidingsample/internal/core"
	"slidingsample/internal/stats"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Uniformity of all four samplers (chi-square p-values)",
		Claim: "Theorems 2.1, 2.2, 3.9, 4.4 — samples are exactly uniform over the window",
		Run:   runE6,
	})
}

// e6Pattern is the shared bursty arrival pattern (same as the core tests).
func e6Pattern() []int64 {
	var p []int64
	add := func(ts int64, count int) {
		for i := 0; i < count; i++ {
			p = append(p, ts)
		}
	}
	add(0, 7)
	add(1, 1)
	add(4, 12)
	add(5, 2)
	add(9, 5)
	add(12, 3)
	add(13, 9)
	return p
}

func runE6(cfg Config) {
	trials := 40000
	if cfg.Quick {
		trials = 10000
	}
	t := newTable(cfg.Out, "sampler", "config", "cells", "chi2", "p-value")
	r := xrand.New(cfg.Seed)

	// SEQ-WR at a bucket-straddling offset.
	{
		const n, m = 8, 21
		counts := make([]int, n)
		for tr := 0; tr < trials; tr++ {
			s := core.NewSeqWR[uint64](r, n, 1)
			for i := 0; i < m; i++ {
				s.Observe(uint64(i), int64(i))
			}
			got, _ := s.Sample()
			counts[got[0].Index-(m-n)]++
		}
		chi, p, _ := stats.ChiSquareUniform(counts)
		t.row("SeqWR", "n=8, 21 arrivals (straddling)", n, chi, p)
	}

	// SEQ-WOR: subsets of size 2 out of n=6.
	{
		const n, k, m = 6, 2, 15
		idx := map[[2]uint64]int{}
		var cells [][2]uint64
		for a := uint64(m - n); a < m; a++ {
			for b := a + 1; b < m; b++ {
				idx[[2]uint64{a, b}] = len(cells)
				cells = append(cells, [2]uint64{a, b})
			}
		}
		counts := make([]int, len(cells))
		for tr := 0; tr < trials; tr++ {
			s := core.NewSeqWOR[uint64](r, n, k)
			for i := 0; i < m; i++ {
				s.Observe(uint64(i), int64(i))
			}
			got, _ := s.Sample()
			a, b := got[0].Index, got[1].Index
			if a > b {
				a, b = b, a
			}
			counts[idx[[2]uint64{a, b}]]++
		}
		chi, p, _ := stats.ChiSquareUniform(counts)
		t.row("SeqWOR", "n=6, k=2, 15 arrivals (straddling)", len(cells), chi, p)
	}

	// TS-WR on the bursty pattern at a straddling query time.
	{
		const t0, now = 10, 13
		pattern := e6Pattern()
		var act []uint64
		w := window.Timestamp{T0: t0}
		for i, ts := range pattern {
			if ts <= now && w.Active(ts, now) {
				act = append(act, uint64(i))
			}
		}
		pos := map[uint64]int{}
		for i, v := range act {
			pos[v] = i
		}
		counts := make([]int, len(act))
		for tr := 0; tr < trials; tr++ {
			s := core.NewTSWR[uint64](r, t0, 1)
			for i, ts := range pattern {
				s.Observe(uint64(i), ts)
			}
			got, _ := s.SampleAt(now)
			counts[pos[got[0].Index]]++
		}
		chi, p, _ := stats.ChiSquareUniform(counts)
		t.row("TSWR", "t0=10, bursty pattern, query@13", len(act), chi, p)
	}

	// TS-WOR subsets on the bursty pattern.
	{
		const t0, now, k = 10, 13, 2
		pattern := e6Pattern()
		var act []uint64
		w := window.Timestamp{T0: t0}
		for i, ts := range pattern {
			if ts <= now && w.Active(ts, now) {
				act = append(act, uint64(i))
			}
		}
		idx := map[[2]uint64]int{}
		count := 0
		for i := 0; i < len(act); i++ {
			for j := i + 1; j < len(act); j++ {
				idx[[2]uint64{act[i], act[j]}] = count
				count++
			}
		}
		counts := make([]int, count)
		for tr := 0; tr < trials; tr++ {
			s := core.NewTSWOR[uint64](r, t0, k)
			for i, ts := range pattern {
				s.Observe(uint64(i), ts)
			}
			got, _ := s.SampleAt(now)
			a, b := got[0].Index, got[1].Index
			if a > b {
				a, b = b, a
			}
			counts[idx[[2]uint64{a, b}]]++
		}
		chi, p, _ := stats.ChiSquareUniform(counts)
		t.row("TSWOR", "t0=10, k=2, bursty pattern, query@13", count, chi, p)
	}

	t.flush()
	note(cfg, "%d trials per row; p-values should be non-pathological (uniform over repeated runs)", trials)
}

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Independence of samples over disjoint windows",
		Claim: "Section 1.3.4 — non-overlapping windows yield independent samples",
		Run:   runE7,
	})
}

func runE7(cfg Config) {
	trials := 120000
	if cfg.Quick {
		trials = 30000
	}
	const n = 4
	r := xrand.New(cfg.Seed)
	tableCounts := make([][]int, n)
	for i := range tableCounts {
		tableCounts[i] = make([]int, n)
	}
	for tr := 0; tr < trials; tr++ {
		s := core.NewSeqWR[uint64](r, n, 1)
		for i := 0; i < n; i++ {
			s.Observe(uint64(i), int64(i))
		}
		a, _ := s.Sample()
		for i := n; i < 3*n; i++ {
			s.Observe(uint64(i), int64(i))
		}
		b, _ := s.Sample()
		tableCounts[a[0].Index][b[0].Index-2*n]++
	}
	chi, p, _ := stats.ChiSquareIndependence(tableCounts)
	t := newTable(cfg.Out, "windows", "trials", "chi2(indep)", "p-value")
	t.row("[0,4) vs [8,12)", trials, chi, p)
	t.flush()
	note(cfg, "a small p-value would indicate the two window samples are correlated; the reservoir substrate guarantees they are not")
}
