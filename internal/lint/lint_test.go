package lint_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each directory under testdata/ is a self-contained
// Go module (its own go.mod, so the parent ./... never builds it) seeded
// with violations annotated analysistest-style:
//
//	s.rng.Uint64() // want `query path .* draws randomness`
//
// The harness builds cmd/swlint, runs `go vet -vettool=swlint -json ./...`
// inside the fixture module, and demands an exact match: every diagnostic
// must be claimed by a want regexp on its exact file:line, and every want
// must be claimed by exactly one diagnostic. This proves both directions
// of the gate: seeded violations make vet exit non-zero with the expected
// report, and clean code (and honored //swlint:allow directives) stay
// silent.

// wantRE matches a want annotation; quoted chunks are Go-quoted regexps.
var (
	wantRE  = regexp.MustCompile(`// want (.*)$`)
	chunkRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// vetDiag is one diagnostic in `go vet -json` output, keyed as
// package -> analyzer -> diagnostics.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func TestAnalyzers(t *testing.T) {
	swlint := buildSwlint(t)
	fixtures, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	ran := 0
	for _, fx := range fixtures {
		if !fx.IsDir() {
			continue
		}
		ran++
		t.Run(fx.Name(), func(t *testing.T) {
			runFixture(t, swlint, filepath.Join("testdata", fx.Name()))
		})
	}
	if ran < 11 {
		t.Fatalf("expected at least 11 fixture modules (one per analyzer plus allow semantics and edge cases), found %d", ran)
	}
}

// buildSwlint compiles the vettool once per test binary.
func buildSwlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/swlint")
	cmd.Dir = "../.."
	cmd.Env = fixtureEnv()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building swlint: %v\n%s", err, out)
	}
	return bin
}

func fixtureEnv() []string {
	return append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off", "GOWORK=off")
}

func runFixture(t *testing.T, swlint, dir string) {
	t.Helper()
	absTool, err := filepath.Abs(swlint)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, dir)

	cmd := exec.Command("go", "vet", "-vettool="+absTool, "-json", "./...")
	cmd.Dir = dir
	cmd.Env = fixtureEnv()
	out, err := cmd.CombinedOutput()
	diags, perr := parseVetJSON(out)
	if perr != nil {
		t.Fatalf("go vet output not parseable (%v; vet err %v):\n%s", perr, err, out)
	}
	// -json mode always exits 0; prove the gate actually fails the build
	// on seeded violations with a plain (non-JSON) run.
	if len(diags) > 0 {
		plain := exec.Command("go", "vet", "-vettool="+absTool, "./...")
		plain.Dir = dir
		plain.Env = fixtureEnv()
		if pout, perr := plain.CombinedOutput(); perr == nil {
			t.Errorf("go vet exited 0 despite %d diagnostics; the gate would not fail the build\n%s", len(diags), pout)
		}
	}

	for _, d := range diags {
		file, line, ok := splitPosn(d.Posn)
		if !ok {
			t.Errorf("unparseable position %q for %q", d.Posn, d.Message)
			continue
		}
		key := file + ":" + strconv.Itoa(line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

// collectWants scans every .go file in the fixture for want annotations,
// keyed by "absfile:line".
func collectWants(t *testing.T, dir string) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			key := abs + ":" + strconv.Itoa(i+1)
			chunks := chunkRE.FindAllString(m[1], -1)
			if len(chunks) == 0 {
				return fmt.Errorf("%s:%d: want annotation with no quoted regexps", path, i+1)
			}
			for _, chunk := range chunks {
				pat, err := unquoteChunk(chunk)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want chunk %s: %v", path, i+1, chunk, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	return wants
}

func unquoteChunk(chunk string) (string, error) {
	if strings.HasPrefix(chunk, "`") {
		return strings.Trim(chunk, "`"), nil
	}
	return strconv.Unquote(chunk)
}

// parseVetJSON decodes `go vet -json` output: '#' comment lines
// interleaved with pretty-printed JSON objects mapping
// package -> analyzer -> []diagnostic.
func parseVetJSON(out []byte) ([]vetDiag, error) {
	var jsonLines []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonLines = append(jsonLines, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(jsonLines, "\n")))
	var diags []vetDiag
	for dec.More() {
		var obj map[string]map[string][]vetDiag
		if err := dec.Decode(&obj); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range obj {
			for _, ds := range byAnalyzer {
				diags = append(diags, ds...)
			}
		}
	}
	return diags, nil
}

// splitPosn splits "file:line:col" (the file may contain colons only on
// exotic platforms; trailing two fields are numeric).
func splitPosn(posn string) (file string, line int, ok bool) {
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		return "", 0, false
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return "", 0, false
	}
	return strings.Join(parts[:len(parts)-2], ":"), line, true
}
