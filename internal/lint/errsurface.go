package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ErrSurface enforces the PR 5 rule that the public surface speaks
// errors (ErrBadWeight, ErrClosed, ErrOverloaded, ...) and HTTP status
// codes, never bare panics. It reports any panic statically reachable
// from an exported function or method of the public root package, or
// from internal/serve's exported API and handle* endpoints, unless the
// panic is a *named internal panic*: a constant message carrying the
// repository's "pkg: ..." prefix convention, the documented
// can't-happen invariant panics (e.g. "parallel: shard/window size
// invariant violated"). Reachability is static-call only; panics behind
// interface dispatch stay covered by the conformance batteries.
var ErrSurface = &analysis.Analyzer{
	Name: "errsurface",
	Doc: "report bare panics (non-constant or missing the \"pkg: ...\" named-panic prefix) " +
		"reachable from exported root-package functions or internal/serve handlers; the " +
		"public surface returns errors, never panics",
	Run:       runErrSurface,
	FactTypes: []analysis.Fact{(*mayPanicBare)(nil)},
}

// mayPanicBare marks a function that can statically reach a panic whose
// argument is not a named internal panic; Via records one witness chain.
type mayPanicBare struct {
	Via string
}

func (*mayPanicBare) AFact()           {}
func (f *mayPanicBare) String() string { return "mayPanicBare(" + f.Via + ")" }

// namedPanicRE matches the repository's named-panic convention: a
// constant string starting with a lowercase package tag and ": ".
var namedPanicRE = regexp.MustCompile(`^[a-z][a-zA-Z0-9_./-]*: `)

// errSurfacePkg classifies the packages with an enforced error surface:
// the public root package (every exported function/method) and
// internal/serve (exported API plus the handle* HTTP endpoints).
func errSurfacePkg(path string) (root, serve bool) {
	return pkgPathHasSuffix(path, "slidingsample"), pkgPathHasSuffix(path, "internal/serve")
}

func runErrSurface(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "errsurface")
	nodes := buildGraph(pass)

	seed := func(call *ast.CallExpr, callee *types.Func) (string, bool) {
		if callee != nil {
			return "", false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return "", false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return "", false
		}
		if len(call.Args) == 1 && isNamedPanicArg(pass, call.Args[0]) {
			return "", false
		}
		return "bare panic at " + shortPos(pass.Fset, call.Pos()), true
	}
	imported := func(callee *types.Func) (string, bool) {
		var f mayPanicBare
		if pass.ImportObjectFact(callee, &f) {
			return f.Via, true
		}
		return "", false
	}
	propagate(pass, nodes, seed, imported)

	for _, n := range nodes {
		if n.via != "" {
			fact := &mayPanicBare{Via: n.via}
			pass.ExportObjectFact(n.fn, fact)
		}
	}
	isRoot, isServe := errSurfacePkg(pass.Pkg.Path())
	if !isRoot && !isServe {
		return nil, nil
	}
	for _, n := range nodes {
		if n.via == "" {
			continue
		}
		entry := n.fn.Exported() || (isServe && strings.HasPrefix(n.fn.Name(), "handle"))
		if !entry {
			continue
		}
		al.report(n.decl.Name.Pos(),
			"%s can reach a bare panic: %s (public surface returns errors; internal invariant panics must be constant \"pkg: ...\" strings)",
			funcDisplay(pass, n.fn), n.via)
	}
	return nil, nil
}

// isNamedPanicArg reports whether a panic argument follows the named
// internal panic convention: a constant "pkg: ..." string, possibly
// built by string concatenation or fmt.Sprintf/Errorf with a constant
// "pkg: ..." format.
func isNamedPanicArg(pass *analysis.Pass, arg ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return namedPanicRE.MatchString(constant.StringVal(tv.Value))
	}
	switch e := arg.(type) {
	case *ast.ParenExpr:
		return isNamedPanicArg(pass, e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return isNamedPanicArg(pass, e.X)
		}
	case *ast.CallExpr:
		callee := staticCallee(pass.TypesInfo, e)
		if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" &&
			(callee.Name() == "Sprintf" || callee.Name() == "Errorf") && len(e.Args) > 0 {
			return isNamedPanicArg(pass, e.Args[0])
		}
	}
	return false
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
