package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// LockOrder checks lock discipline against the hierarchy declared in
// internal/serve/instance.go. Three families of checks:
//
//  1. Acquisition order. Walking each function linearly (forking at
//     branches; a branch that terminates in return/panic does not leak
//     its lock state into the continuation), the analyzer tracks which
//     ranked locks are held and reports acquiring a lock whose declared
//     rank is not strictly greater than every held lock's, any
//     acquisition while a leaf lock is held, and re-acquiring a held
//     lock. Intra-package static calls are checked one level deep via a
//     transitive set of locks each function may acquire.
//
//  2. Mutex value copies: assignments, call arguments, return values,
//     range element variables, and value receivers whose type contains a
//     sync.Mutex or sync.RWMutex.
//
//  3. Manual Lock/Unlock shape: a lock manually unlocked at two or more
//     syntactic sites in one function (the split-return-path shape that
//     invites a missed unlock on the next edit) and a lock acquired but
//     never released (no manual unlock, no defer). Deliberate manual
//     pairs — the applier loop must release qmu before blocking on mu —
//     carry a //swlint:allow with the reason.
//
// The walker is syntactic and per-goroutine: `go` statements and calls
// through interfaces/function values are not followed, and sync.Cond.Wait
// (which unlocks internally) is treated as a plain call. Those dynamics
// stay covered by the -race gates.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check lock acquisition order against the declared serve hierarchy " +
		"(Server.mu < Instance.mu/tenantStripe.mu < Instance.qmu < leaves), flag mutex value copies, " +
		"never-released locks, and manual Lock/Unlock pairs split across return paths",
	Run: runLockOrder,
}

// lockRank is one entry in the declared hierarchy. Locks must be
// acquired in strictly increasing order; a leaf lock must be innermost
// (nothing may be acquired while it is held).
type lockRank struct {
	order int
	leaf  bool
}

// lockHierarchy declares the serve lock order, keyed by struct type name
// then field name. Server.mu is the registry lock, outermost; Instance.mu
// guards sampler state; Instance.qmu guards the ingest queue; oracleMu is
// a strict leaf. statsMu is declared pre-emptively: Instance currently
// publishes stats through the statsClean atomic, but if a stats mutex
// ever appears it is leaf by contract.
// The fabric side of serve adds two ranks: tenantStripe.mu guards one
// registry stripe (rank 1, like Instance.mu — the two are never held
// together, and equal ranks forbid nesting either way), and tenant.mu is a
// strict leaf: a tenant's apply/query path must never reach back into the
// stripe maps or any other lock.
var lockHierarchy = map[string]map[string]lockRank{
	"Server": {
		"mu": {order: 0},
	},
	"Instance": {
		"mu":       {order: 1},
		"qmu":      {order: 2},
		"oracleMu": {order: 3, leaf: true},
		"statsMu":  {order: 3, leaf: true},
	},
	"tenantStripe": {
		"mu": {order: 1},
	},
	"tenant": {
		"mu": {order: 3, leaf: true},
	},
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

var lockMethodOps = map[string]lockOp{
	"Lock":    opLock,
	"RLock":   opRLock,
	"Unlock":  opUnlock,
	"RUnlock": opRUnlock,
}

// lockUse identifies one mutex operand. key is the field or variable
// object when resolvable (stable across mentions), else the display name.
type lockUse struct {
	key  any
	name string
	rank *lockRank
}

type heldLock struct {
	use      lockUse
	read     bool
	deferred bool // unlock is deferred: stays held to function end
	pos      token.Pos
}

// lockCounters aggregates, per mutex per function, the rule-3 evidence.
// Write and read halves are tracked separately so an RLock fast path and
// a deferred write unlock don't mask each other.
type lockCounters struct {
	name                   string
	firstLockW, firstLockR token.Pos
	locksW, locksR         int
	manualW, manualR       int
	deferW, deferR         int
}

type lockChecker struct {
	pass *analysis.Pass
	al   *allows
	// acquires maps each package function to the set of ranked locks it
	// (transitively, through same-package static calls) may acquire.
	acquires map[*types.Func]map[any]lockUse
	// per-function state, reset by checkFunc:
	counters map[any]*lockCounters
	funcName string
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &lockChecker{pass: pass, al: collectAllows(pass, "lockorder")}
	c.buildAcquires()
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		c.copyChecks(f)
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			c.checkFunc(funcDeclDisplay(pass, decl), decl.Body)
			// Function literals run with their own (goroutine or callback)
			// lock context, so each body is checked as its own scope.
			for _, lit := range funcLitsIn(decl.Body) {
				c.checkFunc(funcDeclDisplay(pass, decl)+" (func literal)", lit.Body)
			}
		}
	}
	return nil, nil
}

func funcDeclDisplay(pass *analysis.Pass, decl *ast.FuncDecl) string {
	if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
		return funcDisplay(pass, fn)
	}
	return decl.Name.Name
}

// funcLitsIn returns every function literal in body, outermost first
// (nested literals are returned too; checkFunc skips literal subtrees so
// each body is walked exactly once).
func funcLitsIn(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// classifyLock resolves call as a mutex Lock/RLock/Unlock/RUnlock method
// call and identifies the operand.
func (c *lockChecker) classifyLock(call *ast.CallExpr) (lockOp, lockUse) {
	callee := staticCallee(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return opNone, lockUse{}
	}
	op, ok := lockMethodOps[callee.Name()]
	if !ok {
		return opNone, lockUse{}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, lockUse{}
	}
	return op, c.lockUseOf(sel.X)
}

// lockUseOf identifies the mutex operand expression: its stable key, a
// display name, and its declared rank (nil when untracked).
func (c *lockChecker) lockUseOf(e ast.Expr) lockUse {
	switch x := e.(type) {
	case *ast.SelectorExpr: // recv.field — the hierarchy's shape
		use := lockUse{name: x.Sel.Name}
		if obj := c.pass.TypesInfo.Uses[x.Sel]; obj != nil {
			use.key = obj
		}
		if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				owner := named.Obj().Name()
				use.name = owner + "." + x.Sel.Name
				if fields, ok := lockHierarchy[owner]; ok {
					if r, ok := fields[x.Sel.Name]; ok {
						use.rank = &r
					}
				}
			}
		}
		if use.key == nil {
			use.key = use.name
		}
		return use
	case *ast.Ident:
		use := lockUse{name: x.Name}
		if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
			use.key = obj
		} else {
			use.key = x.Name
		}
		return use
	default:
		return lockUse{key: "<expr>", name: "mutex"}
	}
}

// buildAcquires computes, for every function declared in this package,
// the set of locks it may acquire, directly or through same-package
// static calls (fixed point). Function literals are excluded: their
// acquisitions happen when the literal runs, not when the enclosing
// function is called.
func (c *lockChecker) buildAcquires() {
	c.acquires = make(map[*types.Func]map[any]lockUse)
	type fnBody struct {
		fn    *types.Func
		calls []*types.Func
	}
	var fns []fnBody
	for _, f := range c.pass.Files {
		if isTestFile(c.pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			direct := make(map[any]lockUse)
			var calls []*types.Func
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, use := c.classifyLock(call); op == opLock || op == opRLock {
					direct[use.key] = use
				} else if callee := staticCallee(c.pass.TypesInfo, call); callee != nil && callee.Pkg() == c.pass.Pkg {
					calls = append(calls, callee)
				}
				return true
			})
			c.acquires[fn] = direct
			fns = append(fns, fnBody{fn: fn, calls: calls})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fb := range fns {
			set := c.acquires[fb.fn]
			for _, callee := range fb.calls {
				for k, use := range c.acquires[callee] {
					if _, ok := set[k]; !ok {
						set[k] = use
						changed = true
					}
				}
			}
		}
	}
}

// checkFunc runs the held-lock walk and rule-3 counters over one body.
func (c *lockChecker) checkFunc(name string, body *ast.BlockStmt) {
	c.funcName = name
	c.counters = make(map[any]*lockCounters)
	c.stmts(body.List, nil)
	for _, ctr := range c.counters {
		c.ruleThree(ctr)
	}
}

func (c *lockChecker) ruleThree(ctr *lockCounters) {
	if ctr.locksW > 0 {
		switch {
		case ctr.manualW >= 2:
			c.al.report(ctr.firstLockW, "%s is manually unlocked at %d sites in %s (unlock split across return paths); use defer, or annotate why the pair must stay manual", ctr.name, ctr.manualW, c.funcName)
		case ctr.manualW == 0 && ctr.deferW == 0:
			c.al.report(ctr.firstLockW, "%s is locked but never released in %s", ctr.name, c.funcName)
		}
	}
	if ctr.locksR > 0 {
		switch {
		case ctr.manualR >= 2:
			c.al.report(ctr.firstLockR, "%s is manually RUnlocked at %d sites in %s (unlock split across return paths); use defer, or annotate why the pair must stay manual", ctr.name, ctr.manualR, c.funcName)
		case ctr.manualR == 0 && ctr.deferR == 0:
			c.al.report(ctr.firstLockR, "%s is RLocked but never released in %s", ctr.name, c.funcName)
		}
	}
}

func (c *lockChecker) counterFor(use lockUse) *lockCounters {
	ctr, ok := c.counters[use.key]
	if !ok {
		ctr = &lockCounters{name: use.name}
		c.counters[use.key] = ctr
	}
	return ctr
}

// stmts walks a statement list with the given held set, returning the
// held set at the fall-through point and whether the list terminates
// (every path ends in return/branch/panic before falling through).
func (c *lockChecker) stmts(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = c.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *lockChecker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.ExprStmt:
		return c.exprCalls(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = c.exprCalls(e, held)
		}
		return held, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return c.scanGeneric(s, held), false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = c.exprCalls(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; for merge
		// purposes treat like return (conservative).
		return held, true
	case *ast.DeferStmt:
		return c.deferStmt(s, held), false
	case *ast.GoStmt:
		// Runs concurrently: its lock operations belong to the spawned
		// goroutine (checked via the function-literal pass), not here.
		return held, false
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		held = c.exprCalls(s.Cond, held)
		bodyHeld, bodyTerm := c.stmts(s.Body.List, cloneHeld(held))
		elseHeld, elseTerm := cloneHeld(held), false
		if s.Else != nil {
			elseHeld, elseTerm = c.stmt(s.Else, elseHeld)
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return unionHeld(bodyHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = c.exprCalls(s.Cond, held)
		}
		bodyHeld, _ := c.stmts(s.Body.List, cloneHeld(held))
		return unionHeld(held, bodyHeld), false
	case *ast.RangeStmt:
		held = c.exprCalls(s.X, held)
		bodyHeld, _ := c.stmts(s.Body.List, cloneHeld(held))
		return unionHeld(held, bodyHeld), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, held)
	default:
		return c.scanGeneric(s, held), false
	}
}

// branches handles switch/type-switch/select: each clause forks from the
// pre-state; the continuation is the union of non-terminating clauses
// (plus the pre-state, since no clause may run without a default).
func (c *lockChecker) branches(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = c.exprCalls(s.Tag, held)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	out := cloneHeld(held)
	allTerm := len(clauses) > 0
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			body = cl.Body
		}
		clHeld, clTerm := c.stmts(body, cloneHeld(held))
		if !clTerm {
			out = unionHeld(out, clHeld)
			allTerm = false
		}
	}
	// A select with no default always runs some clause; if every clause
	// terminates, so does the select. (Same for an exhaustive switch, but
	// without default we cannot know it is exhaustive.)
	if allTerm && hasDefault {
		return held, true
	}
	return out, false
}

// scanGeneric applies exprCalls to every expression nested in a statement
// the dispatcher has no structural interest in.
func (c *lockChecker) scanGeneric(s ast.Stmt, held []heldLock) []heldLock {
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			held = c.exprCalls(e, held)
			return false
		}
		return true
	})
	return held
}

// deferStmt registers deferred unlocks (including the defer-func-literal
// wrapper shape): the lock stays held to function end, and the deferred
// unlock satisfies rule 3.
func (c *lockChecker) deferStmt(s *ast.DeferStmt, held []heldLock) []heldLock {
	markDeferred := func(op lockOp, use lockUse) []heldLock {
		ctr := c.counterFor(use)
		if op == opUnlock {
			ctr.deferW++
		} else {
			ctr.deferR++
		}
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].use.key == use.key && !held[i].deferred {
				held[i].deferred = true
				break
			}
		}
		return held
	}
	if op, use := c.classifyLock(s.Call); op == opUnlock || op == opRUnlock {
		return markDeferred(op, use)
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, use := c.classifyLock(call); op == opUnlock || op == opRUnlock {
					held = markDeferred(op, use)
				}
			}
			return true
		})
	}
	return held
}

// exprCalls processes every call in e (function literals excluded) in
// evaluation order: lock operations update the held set and counters,
// other static same-package calls are checked against their transitive
// acquire sets.
func (c *lockChecker) exprCalls(e ast.Expr, held []heldLock) []heldLock {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch op, use := c.classifyLock(call); op {
		case opLock, opRLock:
			held = c.acquire(call.Pos(), use, op == opRLock, held)
		case opUnlock, opRUnlock:
			held = c.release(use, op == opRUnlock, held)
		default:
			if callee := staticCallee(c.pass.TypesInfo, call); callee != nil && callee.Pkg() == c.pass.Pkg && len(held) > 0 {
				c.checkCallee(call.Pos(), callee, held)
			}
		}
		return true
	})
	return held
}

func (c *lockChecker) acquire(pos token.Pos, use lockUse, read bool, held []heldLock) []heldLock {
	ctr := c.counterFor(use)
	if read {
		ctr.locksR++
		if !ctr.firstLockR.IsValid() {
			ctr.firstLockR = pos
		}
	} else {
		ctr.locksW++
		if !ctr.firstLockW.IsValid() {
			ctr.firstLockW = pos
		}
	}
	for _, h := range held {
		if h.use.key == use.key {
			c.al.report(pos, "%s acquires %s while already holding it (self-deadlock)", c.funcName, use.name)
			continue
		}
		if h.use.rank != nil && h.use.rank.leaf {
			c.al.report(pos, "%s acquires %s while holding leaf lock %s (leaf locks must be innermost; see the hierarchy in internal/serve/instance.go)", c.funcName, use.name, h.use.name)
			continue
		}
		if use.rank != nil && h.use.rank != nil && h.use.rank.order >= use.rank.order {
			c.al.report(pos, "%s acquires %s (rank %d) while holding %s (rank %d); declared order is Server.mu < Instance.mu < Instance.qmu < leaves", c.funcName, use.name, use.rank.order, h.use.name, h.use.rank.order)
		}
	}
	return append(held, heldLock{use: use, read: read, pos: pos})
}

func (c *lockChecker) release(use lockUse, read bool, held []heldLock) []heldLock {
	ctr := c.counterFor(use)
	if read {
		ctr.manualR++
	} else {
		ctr.manualW++
	}
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].use.key == use.key && held[i].read == read && !held[i].deferred {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// checkCallee applies the order rules to every lock the callee may
// transitively acquire, reported at the call site.
func (c *lockChecker) checkCallee(pos token.Pos, callee *types.Func, held []heldLock) {
	for _, use := range c.acquires[callee] {
		for _, h := range held {
			if h.use.key == use.key {
				c.al.report(pos, "%s calls %s, which acquires %s while %[1]s already holds it (self-deadlock)", c.funcName, callee.Name(), use.name)
				continue
			}
			if h.use.rank != nil && h.use.rank.leaf {
				c.al.report(pos, "%s calls %s, which acquires %s while leaf lock %s is held (leaf locks must be innermost)", c.funcName, callee.Name(), use.name, h.use.name)
				continue
			}
			if use.rank != nil && h.use.rank != nil && h.use.rank.order >= use.rank.order {
				c.al.report(pos, "%s calls %s, which acquires %s (rank %d) while %s (rank %d) is held; declared order is Server.mu < Instance.mu < Instance.qmu < leaves", c.funcName, callee.Name(), use.name, use.rank.order, h.use.name, h.use.rank.order)
			}
		}
	}
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func unionHeld(a, b []heldLock) []heldLock {
	out := cloneHeld(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.use.key == h.use.key && g.read == h.read {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// ---- mutex value copies ----

func (c *lockChecker) copyChecks(f *ast.File) {
	for _, d := range f.Decls {
		if decl, ok := d.(*ast.FuncDecl); ok && decl.Recv != nil && len(decl.Recv.List) > 0 {
			rt := c.pass.TypesInfo.TypeOf(decl.Recv.List[0].Type)
			if rt != nil {
				if _, isPtr := types.Unalias(rt).(*types.Pointer); !isPtr && containsMutex(rt) {
					c.al.report(decl.Recv.Pos(), "method %s has a value receiver of type %s, which contains a sync mutex; use a pointer receiver", decl.Name.Name, types.TypeString(rt, types.RelativeTo(c.pass.Pkg)))
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				c.reportLockCopy(e, "assignment copies")
			}
		case *ast.CallExpr:
			if staticCallee(c.pass.TypesInfo, n) == nil {
				return true // builtins (len, append, ...) don't copy
			}
			for _, arg := range n.Args {
				c.reportLockCopy(arg, "call passes")
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				c.reportLockCopy(e, "return copies")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := c.pass.TypesInfo.TypeOf(n.Value); t != nil && containsMutex(t) {
					c.al.report(n.Value.Pos(), "range copies a lock: element type %s contains a sync mutex; iterate by index or over pointers", types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
				}
			}
		}
		return true
	})
}

// reportLockCopy flags e when it reads an existing mutex-containing value
// (composite literals build fresh zero-valued locks and are fine; &x and
// calls don't copy at this site).
func (c *lockChecker) reportLockCopy(e ast.Expr, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil || !containsMutex(t) {
		return
	}
	if obj, ok := c.pass.TypesInfo.Uses[rootIdent(e)].(*types.TypeName); ok && obj != nil {
		return // a type conversion operand like T(x), not a value read
	}
	c.al.report(e.Pos(), "%s a lock by value: %s contains a sync mutex; use a pointer", what, types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return &ast.Ident{}
		}
	}
}

// containsMutex reports whether t is, or transitively embeds by value, a
// sync.Mutex or sync.RWMutex. Pointers, slices, maps, channels, and
// interfaces are boundaries: the lock is shared, not copied.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}
