// Fixture module for the //swlint:allow directive semantics themselves.
module slidingsample.fixture/allow

go 1.24
