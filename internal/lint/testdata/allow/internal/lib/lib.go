// Package lib pins the suppression contract of //swlint:allow: strictly
// line-scoped, reason mandatory, analyzer name checked.
package lib

import "time"

// sameLine: a trailing allow covers its own line and ONLY its own line —
// the violation on the next line is still reported.
func sameLine(t0 time.Time) (time.Time, time.Duration) {
	n := time.Now()     //swlint:allow detrand fixture: same-line suppression
	d := time.Since(t0) // want `detrand: call to time\.Since`
	return n, d
}

// standalone: a directive on its own line covers exactly the next line;
// it does not cascade to the line after.
func standalone(t0 time.Time) (time.Time, time.Duration) {
	//swlint:allow detrand fixture: covers the next line only
	n := time.Now()
	d := time.Since(t0) // want `detrand: call to time\.Since`
	return n, d
}

// reasonless: an allow with no reason is itself reported by the analyzer
// it names, and suppresses nothing.
func reasonless() int64 {
	//swlint:allow detrand // want `swlint:allow detrand is missing a reason`
	return time.Now().UnixNano() // want `detrand: call to time\.Now`
}

// unknown: naming a nonexistent analyzer is reported (once, by the
// directive owner) and suppresses nothing.
func unknown() int64 {
	//swlint:allow nosuchanalyzer with a reason // want `swlint:allow names unknown analyzer "nosuchanalyzer"`
	return time.Now().UnixNano() // want `detrand: call to time\.Now`
}

// nameless: a directive with no analyzer at all is reported once.
func nameless() int64 {
	//swlint:allow // want `swlint:allow directive is missing an analyzer name`
	return time.Now().UnixNano() // want `detrand: call to time\.Now`
}
