// Fixture module for the substratecov analyzer.
module slidingsample.fixture/substratecov

go 1.24
