// Package root anchors the fixture's module root (the coverage sources —
// conformance_test.go, README.md — live beside it).
package root
