package root

// The fixture conformance battery covers NewSeqWOR and NewTSWOR but has no
// row for the seq with-replacement constructor — the drift to catch.

import "testing"

func TestConformanceBattery(t *testing.T) {
	rows := []string{"core.NewSeqWOR", "core.NewTSWOR"}
	if len(rows) != 2 {
		t.Fatal("fixture battery changed")
	}
}
