package serve

// The serve capability tests register every sampler name: wor, wr.

import "testing"

func TestRegisterAll(t *testing.T) {
	names := []string{"wor", "wr"}
	if len(names) != 2 {
		t.Fatal("fixture sweep changed")
	}
}
