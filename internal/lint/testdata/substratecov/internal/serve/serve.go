// Package serve is the fixture serving layer; its tests are the coverage
// source the analyzer scans.
package serve
