// Package core stubs the sampler constructors the fixture registry calls.
package core

type Sampler struct{}

func NewSeqWOR() *Sampler { return &Sampler{} }
func NewSeqWR() *Sampler  { return &Sampler{} }
func NewTSWOR() *Sampler  { return &Sampler{} }
