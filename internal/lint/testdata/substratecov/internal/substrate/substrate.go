// Package substrate is a miniature of the real registry: New's nested
// mode/sampler switch IS the registry the analyzer parses.
package substrate

import "slidingsample.fixture/substratecov/internal/core"

type Spec struct{ Mode, Sampler string }

func New(spec Spec) any {
	switch spec.Mode {
	case "seq":
		switch spec.Sampler {
		case "wor":
			return core.NewSeqWOR()
		case "wr":
			return core.NewSeqWR()
		}
	case "ts":
		switch spec.Sampler {
		case "wor":
			return core.NewTSWOR()
		}
	}
	return nil
}
