// Command swsample is the fixture joiner: it imports the substrate
// registry, so the coverage join fires here.
//
// Samplers: wor (default).
package main

import "slidingsample.fixture/substratecov/internal/substrate" // want `substrate seq/w\S \(registered at substrate\.go:\d+\) is not covered by the conformance battery \(conformance_test\.go\)` `substrate seq/w\S \(registered at substrate\.go:\d+\) is not covered by the swsample flag docs \(cmd/swsample/main\.go\)`

func main() {
	_ = substrate.New(substrate.Spec{Mode: "seq", Sampler: "wor"})
}
