// Package core pins the unusedwrite contract: field writes through
// by-value copies that nothing reads afterwards are lost.
package core

type counter struct {
	n, m  int
	items []int
}

// lost: a value receiver's field write mutates a discarded copy.
func (c counter) lost() {
	c.n = 5 // want `write to c\.n is lost: value receiver c is a copy and is never read after this write`
}

// twoLost: a later lost write must not rescue an earlier one.
func (c counter) twoLost() {
	c.n = 1 // want `write to c\.n is lost`
	c.m = 2 // want `write to c\.m is lost`
}

// incLost: op-assign through a value receiver is a write too.
func (c counter) incLost() {
	c.n++ // want `write to c\.n is lost`
}

// readAfter: deliberate copy-then-use — silent.
func (c counter) readAfter() int {
	c.n = 5
	return c.n
}

// sharedBacking: element writes reach the caller through the shared
// backing array — a real use, not a lost write.
func (c counter) sharedBacking() {
	c.items[0] = 1
}

// inc mutates through a pointer receiver — silent.
func (c *counter) inc() { c.n++ }

// rangeLost: the range value variable is an iteration copy.
func rangeLost(cs []counter) {
	for i := range cs {
		_ = i
	}
	for _, c := range cs {
		c.n = 9 // want `write to c\.n is lost: range-value copy c is a copy and is never read after this write`
	}
}

// rangeRead: copy-then-use inside the loop body — silent.
func rangeRead(cs []counter) int {
	sum := 0
	for _, c := range cs {
		c.n = 9
		sum += c.n
	}
	return sum
}
