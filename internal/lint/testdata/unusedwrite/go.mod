// Fixture module for the unusedwrite analyzer.
module slidingsample.fixture/unusedwrite

go 1.24
