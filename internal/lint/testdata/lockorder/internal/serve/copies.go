package serve

import "sync"

type guarded struct {
	mu sync.Mutex
	v  int
}

type wrapper struct{ g guarded } // embeds the lock by value: copying wrapper copies it

// valueReceiver copies the lock on every call.
func (g guarded) valueReceiver() int { // want `method valueReceiver has a value receiver of type guarded`
	return g.v
}

// assignCopy copies a held lock into a local.
func assignCopy(g *guarded) int {
	cp := *g // want `assignment copies a lock by value: guarded contains a sync mutex`
	return cp.v
}

// passCopy hands the lock to a callee by value.
func takes(g guarded) int { return g.v }

func passCopy(g *guarded) int {
	return takes(*g) // want `call passes a lock by value: guarded contains a sync mutex`
}

// returnCopy returns the embedded value, copying the nested lock.
func returnCopy(w *wrapper) guarded {
	return w.g // want `return copies a lock by value: guarded contains a sync mutex`
}

// rangeCopy iterates elements by value.
func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies a lock: element type guarded contains a sync mutex`
		total += g.v
	}
	return total
}

// pointerUses never copy: clean.
func pointerUses(g *guarded) *guarded {
	p := g
	gs := []*guarded{p}
	for _, q := range gs {
		q.mu.Lock()
		q.v++
		q.mu.Unlock()
	}
	return p
}
