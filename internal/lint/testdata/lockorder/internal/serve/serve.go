// Package serve mirrors the real serving layer's lock hierarchy:
// Server.mu (rank 0) < Instance.mu (1) < Instance.qmu (2) < leaves
// (oracleMu). Each function below pins one rule.
package serve

import "sync"

type Server struct {
	mu   sync.RWMutex
	inst map[string]*Instance
}

type Instance struct {
	mu       sync.RWMutex
	qmu      sync.Mutex
	oracleMu sync.Mutex
	n        int
}

// good follows the declared order with deferred unlocks: clean.
func (in *Instance) good() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.qmu.Lock()
	defer in.qmu.Unlock()
	in.n++
}

// inverted acquires mu while holding the higher-ranked qmu.
func (in *Instance) inverted() {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	in.mu.Lock() // want `acquires Instance\.mu \(rank 1\) while holding Instance\.qmu \(rank 2\)`
	defer in.mu.Unlock()
	in.n++
}

// underLeaf acquires while holding a leaf lock.
func (in *Instance) underLeaf() {
	in.oracleMu.Lock()
	defer in.oracleMu.Unlock()
	in.qmu.Lock() // want `acquires Instance\.qmu while holding leaf lock Instance\.oracleMu`
	defer in.qmu.Unlock()
	in.n++
}

// registryInversion takes the registry lock under an instance lock.
func (s *Server) registryInversion(in *Instance) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s.mu.Lock() // want `acquires Server\.mu \(rank 0\) while holding Instance\.mu \(rank 1\)`
	defer s.mu.Unlock()
	in.n++
}

// reacquire locks a mutex it already holds.
func (in *Instance) reacquire() {
	in.qmu.Lock() // want `Instance\.qmu is locked but never released in \(\*Instance\)\.reacquire`
	in.qmu.Lock() // want `acquires Instance\.qmu while already holding it`
	in.n++
}

// splitUnlock duplicates the manual unlock across return paths.
func (in *Instance) splitUnlock(c bool) {
	in.qmu.Lock() // want `Instance\.qmu is manually unlocked at 2 sites in \(\*Instance\)\.splitUnlock`
	if c {
		in.qmu.Unlock()
		return
	}
	in.n++
	in.qmu.Unlock()
}

// earlyReturnOK releases before each terminating branch exactly once per
// path shape the walker tracks: one manual unlock site, no report.
func (in *Instance) earlyReturnOK(c bool) int {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	if c {
		return 0
	}
	return in.n
}

// deliberate mirrors the applier loop: a justified allow keeps the
// manual pair.
func (in *Instance) deliberate(c bool) {
	in.qmu.Lock() //swlint:allow lockorder fixture: deliberate manual pair, released before blocking elsewhere
	if c {
		in.qmu.Unlock()
		return
	}
	in.qmu.Unlock()
}

// lockQmu is plumbing for the transitive check.
func (in *Instance) lockQmu() {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	in.n++
}

// lockMu is plumbing for the transitive inversion.
func (in *Instance) lockMu() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n++
}

// transitiveOK: calling a qmu-taker while holding mu respects the order.
func (in *Instance) transitiveOK() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.lockQmu()
}

// transitiveInversion: the callee acquires mu below qmu.
func (in *Instance) transitiveInversion() {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	in.lockMu() // want `calls lockMu, which acquires Instance\.mu \(rank 1\) while Instance\.qmu \(rank 2\) is held`
}

// transitiveSelf: the callee re-acquires a lock the caller holds.
func (in *Instance) transitiveSelf() {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	in.lockQmu() // want `calls lockQmu, which acquires Instance\.qmu while \(\*Instance\)\.transitiveSelf already holds it`
}
