// Fixture module for the lockorder analyzer.
module slidingsample.fixture/lockorder

go 1.24
