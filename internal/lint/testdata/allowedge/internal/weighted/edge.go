// Package weighted pins two suppression-grammar edge cases: one directive
// naming two analyzers for a line that trips both, and an allow on a
// generic method honored across every instantiation (diagnostics and
// facts key on origin objects).
package weighted

import (
	"time"

	"slidingsample.fixture/allowedge/internal/xrand"
)

// S trips detrand (ambient clock) and norandquery (query-path draw) on
// the same line.
type S struct{ rng *xrand.Rand }

// Sample: one comma-separated directive suppresses both analyzers.
//
//swlint:allow detrand,norandquery fixture: one line, two analyzers
func (s *S) Sample() []int { _ = time.Now(); _ = s.rng.Uint64(); return nil }

// ValuesAt names only detrand: the clock is suppressed, the draw is not.
//
//swlint:allow detrand fixture: only the clock is justified
func (s *S) ValuesAt(now int64) []int { _ = time.Now(); _ = s.rng.Uint64(); return nil } // want `query path .*ValuesAt draws randomness`

// G: the standalone allow sits on the generic origin's declaration and
// suppresses for every instantiation below.
type G[T any] struct{ rng *xrand.Rand }

//swlint:allow norandquery fixture: the origin decl carries the allow for all instantiations
func (g *G[T]) Sample() []T { _ = g.rng.Uint64(); return nil }

// H is the unsuppressed control: reported exactly once even though it is
// instantiated at two types, because the call graph normalizes to origins.
type H[T any] struct{ rng *xrand.Rand }

func (h *H[T]) SampleAt(now int64) []T { return pick[T](h.rng) } // want `query path .*SampleAt draws randomness`

// pick is the generic helper holding the draw; the report lands at the
// entry point through the origin-normalized static call.
func pick[T any](r *xrand.Rand) []T { _ = r.Uint64(); return nil }

func use() {
	var a G[int]
	var b G[string]
	var c H[int]
	var d H[string]
	_, _, _, _ = a, b, c, d
}
