// Fixture module for the suppression-grammar edge cases.
module slidingsample.fixture/allowedge

go 1.24
