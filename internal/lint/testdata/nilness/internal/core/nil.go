// Package core pins the nilness contract: inside the body of a variable's
// own `== nil` check, dereference-like uses are guaranteed faults.
package core

type node struct {
	next *node
	val  int
}

// ok is a pointer-receiver method: legal to call on nil.
func (n *node) ok() bool { return n == nil }

func field(n *node) int {
	if n == nil {
		return n.val // want `n is nil on this path \(checked == nil above\); this field or method access will fault at run time`
	}
	return n.val
}

func deref(p *int) int {
	if p == nil {
		return *p // want `p is nil on this path .* this dereference will fault at run time`
	}
	return *p
}

func index(xs []int) int {
	if xs == nil {
		return xs[0] // want `xs is nil on this path .* this index will fault at run time`
	}
	return xs[0]
}

func call(f func() int) int {
	if f == nil {
		return f() // want `f is nil on this path .* this call will fault at run time`
	}
	return f()
}

// mapRead: reading a nil map is legal Go — silent.
func mapRead(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return 0
}

// repaired: the branch reassigns before the use — silent.
func repaired(p *int) int {
	if p == nil {
		p = new(int)
		return *p
	}
	return *p
}

// ptrMethod: calling a pointer-receiver method on nil is legal — silent.
func ptrMethod(n *node) bool {
	if n == nil {
		return n.ok()
	}
	return false
}

// compound: the && clause may re-establish non-nilness — skipped.
func compound(p *int, use bool) int {
	if p == nil && use {
		return *p
	}
	return 0
}
