// Fixture module for the nilness analyzer.
module slidingsample.fixture/nilness

go 1.24
