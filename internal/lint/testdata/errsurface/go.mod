// Fixture module for the errsurface analyzer.
module slidingsample.fixture/errsurface

go 1.24
