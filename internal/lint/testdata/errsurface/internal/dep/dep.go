// Package dep is outside the enforced surface: its bare panic is not
// reported HERE, but the mayPanicBare fact crosses the package boundary
// to any surface package that calls it.
package dep

import "errors"

// Helper panics with a non-constant value: bare.
func Helper(n int) int {
	if n < 0 {
		panic(errors.New("boom"))
	}
	return n
}

// Named panics under the repository convention: not bare.
func Named(n int) int {
	if n < 0 {
		panic("dep: negative count")
	}
	return n
}
