// Package serve mirrors the serving layer: exported API and handle*
// endpoints must speak errors, not panics.
package serve

import "errors"

type Server struct{ n int }

// handleIngest is an unexported handler: still surface by the handle*
// convention.
func (s *Server) handleIngest(body string) error { // want `\(\*Server\)\.handleIngest can reach a bare panic`
	if body == "" {
		panic("empty body")
	}
	s.n++
	return nil
}

// handleList speaks errors: clean.
func (s *Server) handleList() error {
	if s.n == 0 {
		return errors.New("empty")
	}
	return nil
}

// Register is exported surface with a named panic: clean.
func (s *Server) Register(name string) {
	if name == "" {
		panic("serve: empty instance name")
	}
	s.n++
}

// helper is unexported and not a handler: its bare panic is fine here.
func (s *Server) helper() { panic(s.n) }
