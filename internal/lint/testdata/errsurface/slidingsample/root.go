// Package slidingsample mirrors the public root package: every exported
// function and method is part of the error-speaking surface.
package slidingsample

import (
	"fmt"

	"slidingsample.fixture/errsurface/internal/dep"
)

// New reaches a bare panic directly.
func New(k int) int { // want `New can reach a bare panic: New -> bare panic at root\.go:\d+`
	if k < 0 {
		panic("need k >= 0")
	}
	return k
}

// NewNamed panics with the constant "pkg: ..." convention: clean.
func NewNamed(k int) int {
	if k < 0 {
		panic("slidingsample: need k >= 0")
	}
	return k
}

// NewFormatted panics via Sprintf with a named constant format: clean.
func NewFormatted(k int) int {
	if k < 0 {
		panic(fmt.Sprintf("slidingsample: need k >= 0, got %d", k))
	}
	return k
}

// NewConcat builds the named panic by concatenation: clean.
func NewConcat(who string) string {
	if who == "" {
		panic("slidingsample: empty name" + who)
	}
	return who
}

// Transitive inherits dep's bare panic through the fact chain.
func Transitive(n int) int { // want `Transitive can reach a bare panic: Transitive -> Helper -> bare panic at dep\.go:\d+`
	return dep.Helper(n)
}

// Guarded calls only dep's named panic: clean.
func Guarded(n int) int { return dep.Named(n) }

// internalOnly is unexported: bare panics are its own business.
func internalOnly() { panic(42) }

// Deliberate keeps a bare panic with a justified allow.
//
//swlint:allow errsurface fixture: deliberate bare panic with a reason
func Deliberate() { panic("deliberately bare") }
