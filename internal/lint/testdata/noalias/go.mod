// Fixture module for the noalias analyzer.
module slidingsample.fixture/noalias

go 1.24
