// Package parallel pins the cross-package half of noalias: a wrapper
// forwarding a shard's live view is reported at ITS entry point with the
// chain, resolved through the aliasesRetained fact.
package parallel

import "slidingsample.fixture/noalias/internal/weighted"

type Sharded struct{ w *weighted.WOR }

func NewSharded() *Sharded { return &Sharded{w: weighted.New(8)} }

// Sample forwards the shard's live view.
func (s *Sharded) Sample() []int { return s.w.Sample() } // want `query \(\*Sharded\)\.Sample returns a value aliasing retained sampler state \(-> \(\*WOR\)\.Sample returns field s\.items\)`

// Values forwards the copying query: silent.
func (s *Sharded) Values() []int { return s.w.Values() }
