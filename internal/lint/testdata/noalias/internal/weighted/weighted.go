// Package weighted pins the noalias contract inside one package: query
// entry points must hand back fresh copies, not views of retained state.
package weighted

type WOR struct {
	items []int
	meta  map[string]int
}

func New(n int) *WOR { return &WOR{items: make([]int, n), meta: map[string]int{}} }

// Sample returns the live backing slice.
func (s *WOR) Sample() []int { return s.items } // want `query \(\*WOR\)\.Sample returns a value aliasing retained sampler state \(returns field s\.items\)`

// Values copies element-wise: silent.
func (s *WOR) Values() []int {
	out := make([]int, len(s.items))
	copy(out, s.items)
	return out
}

// ValuesAt copies via append-to-fresh: silent.
func (s *WOR) ValuesAt(now int64) []int { return append([]int(nil), s.items...) }

// Items flows the field through locals and a subslice — still a view.
func (s *WOR) Items() []int {
	v := s.items
	w := v[1:]
	return w // want `query \(\*WOR\)\.Items returns a value aliasing retained sampler state \(returns field s\.items\)`
}

// ItemsAt returns a retained map (no mechanical fix exists for maps).
func (s *WOR) ItemsAt(now int64) map[string]int {
	return s.meta // want `query \(\*WOR\)\.ItemsAt returns a value aliasing retained sampler state \(returns field s\.meta\)`
}

// SampleSlots is not an entry point: live views are its documented
// contract, so it stays silent (but still exports the aliasing fact).
func (s *WOR) SampleSlots() []int { return s.items }

// SampleAt is a deliberate live view, justified in place.
func (s *WOR) SampleAt(now int64) []int {
	return s.items //swlint:allow noalias fixture: documented live view
}
