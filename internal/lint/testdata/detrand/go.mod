// Fixture module for the detrand analyzer.
module slidingsample.fixture/detrand

go 1.24
