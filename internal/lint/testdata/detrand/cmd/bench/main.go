// Command bench mirrors the timing harnesses: wall-clock reads are fine
// when annotated with a justified allow.
package main

import "time"

func main() {
	start := time.Now() //swlint:allow detrand fixture: timing harness measurement only
	work()
	//swlint:allow detrand fixture: standalone allow covers the next line
	elapsed := time.Since(start)
	_ = elapsed
}

func work() {}
