// Package lib seeds detrand's violations: banned imports and wall-clock
// reads in library code.
package lib

import (
	_ "crypto/rand" // want `detrand: import of crypto/rand`
	_ "math/rand"   // want `detrand: import of math/rand`
	"time"
)

// Stamp reads the wall clock: library code must take timestamps from the
// caller.
func Stamp() int64 {
	return time.Now().UnixNano() // want `detrand: call to time\.Now`
}

// Age uses the Since and Until sugar over Now.
func Age(t0 time.Time) (time.Duration, time.Duration) {
	return time.Since(t0), // want `detrand: call to time\.Since`
		time.Until(t0) // want `detrand: call to time\.Until`
}

// Shift only manipulates caller-supplied times: clean.
func Shift(t0 time.Time, d time.Duration) time.Time { return t0.Add(d) }
