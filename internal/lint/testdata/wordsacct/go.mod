// Fixture module for the wordsacct analyzer.
module slidingsample.fixture/wordsacct

go 1.24
