// Package core pins the wordsacct contract: every retained reference-typed
// field of a type with a Words()/words() method must be referenced in the
// footprint closure or carry a justified allow.
package core

import (
	"sync"

	"slidingsample.fixture/wordsacct/internal/xrand"
)

// Bad retains a slice its Words() never accounts.
type Bad struct {
	items []int // want `field Bad\.items \(\[\]int\) is retained state but not accounted in Bad's Words\(\)/words\(\)`
	count int
}

func (b *Bad) Words() int { return b.count }

// Good accounts every retained field — the map through a same-type helper,
// which is part of the Words closure.
type Good struct {
	items []int
	kv    map[string]int
}

func (g *Good) Words() int { return len(g.items) + g.kvWords() }

func (g *Good) kvWords() int { return len(g.kv) }

// Excluded fields are outside the word model by definition: sync
// primitives, channels (transport), func values (configuration), and the
// seeded rng.
type Excluded struct {
	mu   sync.Mutex
	ch   chan int
	hook func() int
	rng  *xrand.Rand
	n    int
}

func (e *Excluded) Words() int { return e.n }

// Allowed: an unreferenced field with a justified exclusion stays silent.
type Allowed struct {
	scratch []int //swlint:allow wordsacct fixture: recycled transport, empty between calls
	n       int
}

func (a *Allowed) Words() int { return a.n }

// LowerWords: the unexported words(peak) spelling is held to the same
// contract.
type LowerWords struct {
	cache []uint64 // want `field LowerWords\.cache \(\[\]uint64\) is retained state but not accounted in LowerWords's Words\(\)/words\(\)`
	n     int
}

func (l *LowerWords) words(peak bool) int {
	if peak {
		return 2 * l.n
	}
	return l.n
}
