// Package xrand stubs the seeded generator: wordsacct excludes *xrand.Rand
// fields by package-path suffix, not by contents.
package xrand

type Rand struct{ s uint64 }

func New(seed uint64) *Rand { return &Rand{s: seed} }

func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return r.s
}
