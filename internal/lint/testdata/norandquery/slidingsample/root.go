// Package slidingsample mirrors the public root package (scoping is by
// path suffix): exported entry points are held to the rng-free contract,
// including taint inherited from the out-of-scope core package.
package slidingsample

import (
	"slidingsample.fixture/norandquery/internal/core"
	"slidingsample.fixture/norandquery/internal/xrand"
)

type Sampler struct {
	res  *core.Res
	last uint64
}

func New(seed uint64) *Sampler { return &Sampler{res: core.NewRes(xrand.New(seed))} }

// Sample picks up core's query-time draw through the fact chain.
func (s *Sampler) Sample() uint64 { // want `query path \(\*Sampler\)\.Sample draws randomness: \(\*Sampler\)\.Sample -> \(\*Res\)\.Sample -> \(\*xrand\.Rand\)\.Uint64`
	return s.res.Sample()
}

// ValuesAt is a clean query over cached state.
func (s *Sampler) ValuesAt(now int64) uint64 { return s.last }

// observe is unexported and may draw freely.
func (s *Sampler) observe() { s.last = s.res.Sample() }

// Refresh draws but is not a query entry-point name: no report.
func (s *Sampler) Refresh() { s.observe() }
