// Fixture module for the norandquery analyzer. The module path embeds
// "slidingsample" so the analyzers' package gates treat it as in-repo.
module slidingsample.fixture/norandquery

go 1.24
