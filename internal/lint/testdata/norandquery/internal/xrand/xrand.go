// Package xrand is a stub of the real seeded generator: norandquery keys
// on the package path suffix and the Rand receiver, not the contents.
package xrand

type Rand struct{ s uint64 }

func New(seed uint64) *Rand { return &Rand{s: seed} }

func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return r.s
}

func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }
