// Package core is OUT of norandquery's reporting scope (only the root
// package, weighted, parallel, and ehist hold the contract), so its
// drawing Sample is not reported here — but its fact still flows to any
// scoped caller.
package core

import "slidingsample.fixture/norandquery/internal/xrand"

type Res struct{ rng *xrand.Rand }

func NewRes(rng *xrand.Rand) *Res { return &Res{rng: rng} }

func (r *Res) Sample() uint64 { return r.rng.Uint64() }
