// Package weighted seeds the fixture's violations: query entry points
// that draw directly, transitively, and not at all.
package weighted

import "slidingsample.fixture/norandquery/internal/xrand"

type WOR struct {
	rng   *xrand.Rand
	items []int
}

func NewWOR(rng *xrand.Rand) *WOR { return &WOR{rng: rng} }

// Observe draws at ingest time: allowed, Observe is not a query entry.
func (s *WOR) Observe(v int) {
	if s.rng.Float64() < 0.5 {
		s.items = append(s.items, v)
	}
}

// Sample is a clean query for norandquery (no draw on its path) but a
// live-view return for noalias.
func (s *WOR) Sample() []int { return s.items } // want `query \(\*WOR\)\.Sample returns a value aliasing retained sampler state`

// SampleAt draws directly at query time.
func (s *WOR) SampleAt(now int64) []int { // want `query path \(\*WOR\)\.SampleAt draws randomness: \(\*WOR\)\.SampleAt -> \(\*xrand\.Rand\)\.Uint64`
	if s.rng.Uint64()%2 == 0 {
		return s.items // want `query \(\*WOR\)\.SampleAt returns a value aliasing retained sampler state`
	}
	return nil
}

// reseed is unexported plumbing: tainted, but not an entry point itself.
func (s *WOR) reseed() uint64 { return s.rng.Uint64() }

// Words reaches a draw transitively through unexported plumbing.
func (s *WOR) Words() int { // want `query path \(\*WOR\)\.Words draws randomness: \(\*WOR\)\.Words -> \(\*WOR\)\.reseed -> \(\*xrand\.Rand\)\.Uint64`
	_ = s.reseed()
	return len(s.items)
}

// SizeAt draws deliberately; the justified allow silences the report.
//
//swlint:allow norandquery fixture: deliberate query-time draw with a reason
func (s *WOR) SizeAt(now int64) uint64 {
	return s.rng.Uint64()
}
