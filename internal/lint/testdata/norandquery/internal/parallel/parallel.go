// Package parallel proves cross-package taint: the draw lives in
// weighted, the report lands on this package's entry point via the
// exported drawsRand fact.
package parallel

import "slidingsample.fixture/norandquery/internal/weighted"

type Sharded struct{ w *weighted.WOR }

func NewSharded(w *weighted.WOR) *Sharded { return &Sharded{w: w} }

// SampleAt inherits weighted's query-time draw across the package
// boundary.
func (s *Sharded) SampleAt(now int64) []int { // want `query path \(\*Sharded\)\.SampleAt draws randomness: \(\*Sharded\)\.SampleAt -> \(\*WOR\)\.SampleAt -> \(\*xrand\.Rand\)\.Uint64`
	return s.w.SampleAt(now) // want `query \(\*Sharded\)\.SampleAt returns a value aliasing retained sampler state \(-> \(\*WOR\)\.SampleAt returns field s\.items\)`
}

// Sample delegates to weighted's rng-free query: clean for norandquery,
// but the live view it forwards is reported here too, with the chain.
func (s *Sharded) Sample() []int { return s.w.Sample() } // want `query \(\*Sharded\)\.Sample returns a value aliasing retained sampler state`
