package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Nilness is a lightweight local reimplementation of the x/tools nilness
// pass (the upstream pass needs go/ssa, which the vendored tool-only
// x/tools subset deliberately omits). It catches the shape that matters
// in review: inside the body of `if x == nil { ... }` — where x is a
// pointer, map, slice, or interface and is not reassigned in the block —
// any dereference, call, index, or field access through x is a guaranteed
// nil-pointer use.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: "report uses (deref, call, selector, index) of a variable inside the body of " +
		"its own `== nil` check; a conservative AST subset of x/tools' nilness",
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "nilness")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(x ast.Node) bool {
			ifs, ok := x.(*ast.IfStmt)
			if !ok {
				return true
			}
			v := nilCheckedVar(pass, ifs.Cond)
			if v == nil || assignsVar(pass, ifs.Body, v) {
				return true
			}
			reportNilUses(pass, al, ifs.Body, v)
			return true
		})
	}
	return nil, nil
}

// nilCheckedVar returns the variable v when cond is exactly `v == nil`
// (or `nil == v`) for a nil-able v; nil otherwise. Compound conditions
// (&&, ||) are skipped: the extra clause may re-establish non-nilness.
func nilCheckedVar(pass *analysis.Pass, cond ast.Expr) *types.Var {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	operand := be.X
	if isNilIdent(pass, be.X) {
		operand = be.Y
	} else if !isNilIdent(pass, be.Y) {
		return nil
	}
	id, ok := operand.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Interface, *types.Slice, *types.Signature, *types.Chan:
		return v
	}
	return nil
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// assignsVar reports whether body assigns to v anywhere (including :=
// shadows sharing the object? no — shadows are distinct objects, which is
// exactly right: a shadowed x is a different variable).
func assignsVar(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhsVar(pass, lhs) == v {
				found = true
			}
		}
		return true
	})
	return found
}

// reportNilUses flags guaranteed-nil uses of v in body: v.f, v[i], *v,
// v(...), range v for maps is fine (ranging a nil map is legal), as are
// len/cap/append and passing v along.
func reportNilUses(pass *analysis.Pass, al *allows, body *ast.BlockStmt, v *types.Var) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // may run after v is reassigned elsewhere
		case *ast.SelectorExpr:
			if usesVar(pass, x.X, v) && !methodOnNilable(pass, x) {
				al.report(x.Pos(), "%s is nil on this path (checked == nil above); this %s will fault at run time", v.Name(), "field or method access")
				return false
			}
		case *ast.StarExpr:
			if usesVar(pass, x.X, v) {
				al.report(x.Pos(), "%s is nil on this path (checked == nil above); this %s will fault at run time", v.Name(), "dereference")
				return false
			}
		case *ast.IndexExpr:
			// Reading a nil map is legal; indexing a nil slice/ptr faults.
			if usesVar(pass, x.X, v) {
				if _, isMap := v.Type().Underlying().(*types.Map); !isMap {
					al.report(x.Pos(), "%s is nil on this path (checked == nil above); this %s will fault at run time", v.Name(), "index")
					return false
				}
			}
		case *ast.CallExpr:
			if usesVar(pass, x.Fun, v) {
				al.report(x.Pos(), "%s is nil on this path (checked == nil above); this %s will fault at run time", v.Name(), "call")
				return false
			}
		}
		return true
	})
}

// usesVar reports whether e is exactly an identifier for v.
func usesVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}

// methodOnNilable reports whether sel selects a method with a pointer
// receiver — calling those on a nil pointer is legal Go when the method
// tolerates it, so only field accesses and value-receiver methods (which
// dereference) are reported for pointers.
func methodOnNilable(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() == types.FieldVal {
		return false
	}
	fn, _ := selection.Obj().(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ptrRecv := sig.Recv().Type().(*types.Pointer)
	return ptrRecv
}

// lhsVar resolves an assignment target to its variable object (shared
// with noalias and unusedwrite).
func lhsVar(pass *analysis.Pass, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}
