package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// UnusedWrite is a lightweight local reimplementation of the x/tools
// unusedwrite pass (upstream needs go/ssa, absent from the vendored
// tool-only subset). It reports the two classic lost-write shapes that
// matter for this codebase's value-semantics types:
//
//   - a field write through a VALUE receiver (`func (s S) m() { s.f = ... }`)
//     mutates the method's private copy, which is discarded at return;
//   - a field write through a range VALUE variable
//     (`for _, v := range xs { v.f = ... }`) mutates the iteration copy.
//
// A write is only reported when the copy is never read afterwards (the
// variable does not appear again after the assignment), so deliberate
// local-copy-then-use patterns stay silent.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc: "report field writes through value receivers or range-value copies that are " +
		"never read afterwards; a conservative AST subset of x/tools' unusedwrite",
	Run: runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "unusedwrite")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Value receivers.
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				if _, ptr := fd.Recv.List[0].Type.(*ast.StarExpr); !ptr {
					if v, ok := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
						checkCopyWrites(pass, al, fd.Body, v, "value receiver")
					}
				}
			}
			// Range-value copies of struct type.
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				rng, ok := x.(*ast.RangeStmt)
				if !ok || rng.Value == nil {
					return true
				}
				id, ok := rng.Value.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					return true
				}
				if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
					return true
				}
				checkCopyWrites(pass, al, rng.Body, v, "range-value copy")
				return true
			})
		}
	}
	return nil, nil
}

// checkCopyWrites reports `v.f = ...` (and op-assigns) in body when v — a
// by-value copy — is never read after the write.
func checkCopyWrites(pass *analysis.Pass, al *allows, body *ast.BlockStmt, v *types.Var, kind string) {
	type write struct {
		pos   token.Pos
		field string
		end   token.Pos // position after which a read would rescue it
	}
	var writes []write
	var reads []token.Pos

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
						// Direct v.f = ... — a candidate lost write; the
						// target's own mention of v is not a read.
						writes = append(writes, write{pos: sel.Pos(), field: sel.Sel.Name, end: x.End()})
						continue
					}
				}
				// v.f[i] = ..., other targets: writes through shared
				// backing, so the mention of v is a real use.
				collectReads(pass, lhs, v, &reads)
			}
			for _, rhs := range x.Rhs {
				collectReads(pass, rhs, v, &reads)
			}
			return false
		case *ast.IncDecStmt:
			if sel, ok := x.X.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					writes = append(writes, write{pos: sel.Pos(), field: sel.Sel.Name, end: x.End()})
					return false
				}
			}
			collectReads(pass, x.X, v, &reads)
			return false
		default:
			if e, ok := x.(ast.Expr); ok {
				collectReads(pass, e, v, &reads)
				return false
			}
			return true
		}
	})

	for _, w := range writes {
		rescued := false
		for _, r := range reads {
			if r > w.end {
				rescued = true
				break
			}
		}
		if !rescued {
			al.report(w.pos,
				"write to %s.%s is lost: %s %s is a copy and is never read after this write",
				v.Name(), w.field, kind, v.Name())
		}
	}
}

// collectReads records positions where v itself is read inside e —
// excluding the write target shape handled by the caller.
func collectReads(pass *analysis.Pass, e ast.Expr, v *types.Var, out *[]token.Pos) {
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			*out = append(*out, id.Pos())
		}
		return true
	})
}
