package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// SubstrateCov closes the "wire it in five places" drift: a substrate
// registered in internal/substrate.New must be exercised by the root
// conformance battery (its constructor appears in conformance_test.go),
// registrable through the serving layer's capability tests (its name
// appears under internal/serve), documented in the swsample flag docs
// (cmd/swsample/main.go) and in README's sampler-name table. The
// substrate pass parses New's mode/sampler switch — the registry IS that
// switch — and exports the table as a package fact; the cmd/swsample pass
// (the one importer that always exists) joins the fact against the
// coverage sources read from the repository root and reports each gap at
// the substrate import.
var SubstrateCov = &analysis.Analyzer{
	Name: "substratecov",
	Doc: "cross-check the internal/substrate registry against the conformance battery, " +
		"serve capability tests, swsample flag docs, and README sampler table; report " +
		"substrates registered but not covered",
	Run:       runSubstrateCov,
	FactTypes: []analysis.Fact{(*substrateTable)(nil)},
}

// substrateEntry is one registered substrate: its mode ("seq"/"ts"), its
// -sampler name, the constructor the registry calls for it, and where the
// case label sits (carried into diagnostics so the report names the
// registry line even though it fires in the importing package).
type substrateEntry struct {
	Mode, Name, Ctor, Pos string
}

// substrateTable is the registry parsed out of substrate.New, exported as
// a package fact on internal/substrate.
type substrateTable struct {
	Entries []substrateEntry
}

func (*substrateTable) AFact() {}
func (t *substrateTable) String() string {
	return "substrateTable(" + strconv.Itoa(len(t.Entries)) + " entries)"
}

func isSubstratePkg(path string) bool { return pkgPathHasSuffix(path, "internal/substrate") }
func isCovJoinerPkg(path string) bool { return pkgPathHasSuffix(path, "cmd/swsample") }

func runSubstrateCov(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	if isSubstratePkg(pass.Pkg.Path()) {
		if tab := parseSubstrateRegistry(pass); len(tab.Entries) > 0 {
			pass.ExportPackageFact(tab)
		}
		return nil, nil
	}
	if !isCovJoinerPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "substratecov")
	for _, imp := range pass.Pkg.Imports() {
		if !isSubstratePkg(imp.Path()) {
			continue
		}
		var tab substrateTable
		if !pass.ImportPackageFact(imp, &tab) {
			continue
		}
		reportCoverageGaps(pass, al, imp, &tab)
	}
	return nil, nil
}

// parseSubstrateRegistry walks New's nested switches: the outer switch on
// spec.Mode, an inner switch on spec.Sampler per mode, one constructor
// call per case.
func parseSubstrateRegistry(pass *analysis.Pass) *substrateTable {
	tab := &substrateTable{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "New" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				sw, ok := x.(*ast.SwitchStmt)
				if !ok || !switchTagSelects(sw, "Mode") {
					return true
				}
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, mode := range caseStrings(cc) {
						collectSamplerCases(pass, cc, mode, tab)
					}
				}
				return false
			})
		}
	}
	sort.Slice(tab.Entries, func(i, j int) bool {
		a, b := tab.Entries[i], tab.Entries[j]
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		return a.Name < b.Name
	})
	return tab
}

// collectSamplerCases finds the spec.Sampler switch inside one mode case
// and records an entry per sampler name.
func collectSamplerCases(pass *analysis.Pass, modeCase *ast.CaseClause, mode string, tab *substrateTable) {
	for _, stmt := range modeCase.Body {
		sw, ok := stmt.(*ast.SwitchStmt)
		if !ok || !switchTagSelects(sw, "Sampler") {
			continue
		}
		for _, s := range sw.Body.List {
			cc, ok := s.(*ast.CaseClause)
			if !ok {
				continue
			}
			ctor := firstConstructor(cc)
			for _, name := range caseStrings(cc) {
				p := pass.Fset.Position(cc.Pos())
				tab.Entries = append(tab.Entries, substrateEntry{
					Mode: mode,
					Name: name,
					Ctor: ctor,
					Pos:  filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line),
				})
			}
		}
	}
}

// switchTagSelects reports whether sw switches on a selector whose field
// is called name (spec.Mode, spec.Sampler).
func switchTagSelects(sw *ast.SwitchStmt, name string) bool {
	sel, ok := sw.Tag.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// caseStrings returns the string-literal labels of a case clause.
func caseStrings(cc *ast.CaseClause) []string {
	var out []string
	for _, e := range cc.List {
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// firstConstructor returns the base name of the first New* call in the
// case body ("NewSeqWOR"), the registry's join key into the conformance
// battery.
func firstConstructor(cc *ast.CaseClause) string {
	ctor := ""
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(x ast.Node) bool {
			if ctor != "" {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			case *ast.IndexExpr: // generic instantiation New[T](...)
				switch g := fun.X.(type) {
				case *ast.Ident:
					name = g.Name
				case *ast.SelectorExpr:
					name = g.Sel.Name
				}
			}
			if strings.HasPrefix(name, "New") {
				ctor = name
				return false
			}
			return true
		})
		if ctor != "" {
			break
		}
	}
	return ctor
}

// coverageSource is one place a substrate must be wired, identified by the
// repo-root-relative files to scan and the join key to look for.
type coverageSource struct {
	label   string
	files   []string // relative to the module root; globs allowed
	useCtor bool     // match the constructor name instead of the sampler name
}

var coverageSources = []coverageSource{
	{label: "conformance battery (conformance_test.go)", files: []string{"conformance_test.go"}, useCtor: true},
	{label: "serve capability tests (internal/serve)", files: []string{"internal/serve/*.go"}},
	{label: "swsample flag docs (cmd/swsample/main.go)", files: []string{"cmd/swsample/main.go"}},
	{label: "README sampler table (README.md)", files: []string{"README.md"}},
}

// reportCoverageGaps reads each coverage source from the module root and
// reports, at the substrate import, every registry entry a source misses.
func reportCoverageGaps(pass *analysis.Pass, al *allows, imp *types.Package, tab *substrateTable) {
	root := moduleRoot(pass)
	if root == "" {
		return
	}
	pos := importPos(pass, imp.Path())
	for _, src := range coverageSources {
		text, found := readSourceFiles(root, src.files)
		if !found {
			al.report(pos, "substratecov: coverage source %s not found under %s", src.label, root)
			continue
		}
		for _, e := range tab.Entries {
			key := e.Name
			if src.useCtor {
				key = e.Ctor
				if key == "" {
					continue
				}
			}
			if !containsToken(text, key) {
				al.report(pos,
					"substrate %s/%s (registered at %s) is not covered by the %s: add it, or annotate //swlint:allow substratecov <reason>",
					e.Mode, e.Name, e.Pos, src.label)
			}
		}
	}
}

// containsToken reports whether text contains key bounded by non-word
// characters, so "wor" does not match inside "weighted-wor" or "NewSeqWOR"
// inside "NewSeqWORX".
func containsToken(text, key string) bool {
	for from := 0; ; {
		i := strings.Index(text[from:], key)
		if i < 0 {
			return false
		}
		i += from
		before := byte(0)
		if i > 0 {
			before = text[i-1]
		}
		after := byte(0)
		if j := i + len(key); j < len(text) {
			after = text[j]
		}
		if !wordByte(before) && !wordByte(after) {
			return true
		}
		from = i + 1
	}
}

func wordByte(b byte) bool {
	return b == '_' || b == '-' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// readSourceFiles concatenates the named files (relative globs) under
// root; found reports whether at least one file matched.
func readSourceFiles(root string, patterns []string) (string, bool) {
	var sb strings.Builder
	found := false
	for _, pat := range patterns {
		matches, _ := filepath.Glob(filepath.Join(root, filepath.FromSlash(pat)))
		for _, m := range matches {
			data, err := os.ReadFile(m)
			if err != nil {
				continue
			}
			found = true
			sb.Write(data)
			sb.WriteByte('\n')
		}
	}
	return sb.String(), found
}

// moduleRoot walks up from the pass's first file to the enclosing go.mod.
func moduleRoot(pass *analysis.Pass) string {
	if len(pass.Files) == 0 {
		return ""
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// importPos locates the import spec of path in the pass's files (the
// natural anchor for cross-package coverage reports).
func importPos(pass *analysis.Pass, path string) token.Pos {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == path {
				return spec.Pos()
			}
		}
	}
	return pass.Files[0].Pos()
}
