package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// WordsAcct enforces the §6 word-model accounting contract: every type
// that reports its footprint through a Words()/words() method must account
// for each retained reference-typed field (slices, maps, embedded oracles,
// cached scratch) in that method — by referencing the field somewhere in
// the Words closure — or carry an explicit //swlint:allow wordsacct with
// the word-model exclusion that justifies leaving it out. Adding a field
// to a counted type without deciding its accounting breaks the build.
var WordsAcct = &analysis.Analyzer{
	Name: "wordsacct",
	Doc: "require every retained reference-typed field of a type with a Words()/words() " +
		"footprint method to be accounted in that method or carry an explicit " +
		"//swlint:allow wordsacct word-model exclusion (DESIGN.md §6)",
	Run: runWordsAcct,
}

// needsAccounting reports whether a field of type t retains heap state the
// word model must decide on. The documented exclusions (DESIGN.md §6):
// channels are transport, func values are configuration/code, xrand.Rand
// and the sync primitives are fixed-size machinery outside the model.
// seen guards recursive struct walks against cycles.
func needsAccounting(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if excludedWordsType(named) {
			return false
		}
		if hasWordsMethod(named) {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Chan, *types.Signature:
		return false
	case *types.Interface:
		return true // embedded oracle: dynamic state of unknown size
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok && excludedWordsType(named) {
			return false
		}
		return true // retained heap structure behind the pointer
	case *types.Array:
		return needsAccounting(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if needsAccounting(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		return false // scalars
	}
}

// excludedWordsType lists named types outside the word model: the seeded
// rng (code, not stream state) and the sync package's primitives.
func excludedWordsType(named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if isXrandPkg(path) && obj.Name() == "Rand" {
		return true
	}
	return path == "sync" || path == "sync/atomic"
}

// hasWordsMethod reports whether named declares a Words/words method with
// a single int result (promoted methods do not count: an embedded counted
// type is itself a field the outer Words must account for).
func hasWordsMethod(named *types.Named) bool {
	named = named.Origin()
	for i := 0; i < named.NumMethods(); i++ {
		if isWordsFunc(named.Method(i)) {
			return true
		}
	}
	return false
}

// isWordsFunc reports whether fn is a footprint method: named Words or
// words, any parameters (the peak-selector shape words(peak bool) counts),
// exactly one int result.
func isWordsFunc(fn *types.Func) bool {
	if fn.Name() != "Words" && fn.Name() != "words" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// recvNamed resolves a method node's receiver to its origin named type,
// or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil {
		return nil
	}
	return named.Origin()
}

func runWordsAcct(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "wordsacct")
	nodes := buildGraph(pass)

	// Group this package's methods by origin receiver type.
	methods := make(map[*types.Named][]*funcNode)
	for _, n := range nodes {
		if named := recvNamed(n.fn); named != nil {
			methods[named] = append(methods[named], n)
		}
	}

	for named, ms := range methods {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		// The Words closure: the footprint methods plus every same-type
		// method statically reachable from them (helpers like shardWords
		// and the per-shard walkers).
		var work []*funcNode
		byFn := make(map[*types.Func]*funcNode, len(ms))
		for _, m := range ms {
			byFn[m.fn] = m
			if isWordsFunc(m.fn) {
				work = append(work, m)
			}
		}
		if len(work) == 0 {
			continue
		}
		closure := make(map[*funcNode]bool)
		for len(work) > 0 {
			n := work[0]
			work = work[1:]
			if closure[n] {
				continue
			}
			closure[n] = true
			for _, e := range n.edges {
				if e.callee == nil {
					continue
				}
				if m := byFn[e.callee]; m != nil && !closure[m] {
					work = append(work, m)
				}
			}
		}

		// Fields referenced anywhere in the closure, including embedded
		// hops on the way to a promoted field or method.
		accounted := make(map[*types.Var]bool)
		for n := range closure {
			ast.Inspect(n.decl.Body, func(x ast.Node) bool {
				sel, ok := x.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok {
					return true
				}
				recv := selection.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				rn, _ := recv.(*types.Named)
				if rn == nil || rn.Origin() != named {
					return true
				}
				markIndexPath(st, selection, accounted)
				return true
			})
		}

		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if accounted[f] || !needsAccounting(f.Type(), map[types.Type]bool{}) {
				continue
			}
			al.report(f.Pos(),
				"field %s.%s (%s) is retained state but not accounted in %s's Words()/words(): count its words or annotate //swlint:allow wordsacct <word-model exclusion> (DESIGN.md §6)",
				named.Obj().Name(), f.Name(), types.TypeString(f.Type(), types.RelativeTo(pass.Pkg)), named.Obj().Name())
		}
	}
	return nil, nil
}

// markIndexPath marks every struct field traversed by a selection rooted
// at st: for a field selection all index hops are fields; for a method
// selection the final hop is the method and everything before it is an
// embedded field.
func markIndexPath(st *types.Struct, selection *types.Selection, accounted map[*types.Var]bool) {
	idx := selection.Index()
	if selection.Kind() != types.FieldVal {
		if len(idx) == 0 {
			return
		}
		idx = idx[:len(idx)-1]
	}
	cur := st
	for _, i := range idx {
		if i >= cur.NumFields() {
			return
		}
		f := cur.Field(i)
		accounted[f] = true
		t := f.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		next, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		cur = next
	}
}
