package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// NoRandQuery reports query-path entry points that can reach a
// randomness draw. See the package doc for the invariant's provenance
// (PR 6 byte-determinism; internal/weighted/norand_test.go).
var NoRandQuery = &analysis.Analyzer{
	Name: "norandquery",
	Doc: "report query-path entry points (Sample, SampleAt, ValuesAt, SizeAt, WeightAt, " +
		"TotalWeightAt, Words, EstimateAt, SumAt) that can statically reach an xrand.Rand " +
		"draw; queries must be pure reads of sampler state",
	Run:       runNoRandQuery,
	FactTypes: []analysis.Fact{(*drawsRand)(nil)},
}

// drawsRand marks a function that can statically reach an xrand.Rand
// method call; Via records one witness chain.
type drawsRand struct {
	Via string
}

func (*drawsRand) AFact()           {}
func (f *drawsRand) String() string { return "drawsRand(" + f.Via + ")" }

// queryEntryPoints are the method/function names that constitute the
// read-only query surface across the sampler packages.
var queryEntryPoints = map[string]bool{
	"Sample":        true,
	"SampleAt":      true,
	"ValuesAt":      true,
	"SizeAt":        true,
	"WeightAt":      true,
	"TotalWeightAt": true,
	"Words":         true,
	"EstimateAt":    true,
	"SumAt":         true,
}

// queryScopedPkg reports whether entry points in this package are held to
// the rng-free contract: the public root package and the three sampler
// packages whose query determinism the fan-out proofs rely on. Other
// packages still compute and export drawsRand facts (so taint introduced
// there surfaces at a scoped entry point), they just have no entry points
// of their own.
func queryScopedPkg(path string) bool {
	return pkgPathHasSuffix(path, "slidingsample") ||
		pkgPathHasSuffix(path, "internal/weighted") ||
		pkgPathHasSuffix(path, "internal/parallel") ||
		pkgPathHasSuffix(path, "internal/ehist")
}

// isXrandPkg identifies the seeded rng package; every method on its Rand
// type (draws, Seed, Split) taints the caller.
func isXrandPkg(path string) bool {
	return pkgPathHasSuffix(path, "internal/xrand")
}

func runNoRandQuery(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "norandquery")
	nodes := buildGraph(pass)

	seed := func(_ *ast.CallExpr, callee *types.Func) (string, bool) {
		if callee == nil || callee.Pkg() == nil || !isXrandPkg(callee.Pkg().Path()) {
			return "", false
		}
		sig, _ := callee.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return "", false // constructors (New, NewZipf) allocate, never draw
		}
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Name() != "Rand" {
			return "", false
		}
		return "(*xrand.Rand)." + callee.Name(), true
	}
	imported := func(callee *types.Func) (string, bool) {
		var f drawsRand
		if pass.ImportObjectFact(callee, &f) {
			return f.Via, true
		}
		return "", false
	}
	propagate(pass, nodes, seed, imported)

	for _, n := range nodes {
		if n.via != "" {
			fact := &drawsRand{Via: n.via}
			pass.ExportObjectFact(n.fn, fact)
		}
	}
	if !queryScopedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, n := range nodes {
		if n.via == "" || !n.fn.Exported() || !queryEntryPoints[n.fn.Name()] {
			continue
		}
		al.report(n.decl.Name.Pos(),
			"query path %s draws randomness: %s (queries must be rng-free reads; fix, or justify with //swlint:allow norandquery <reason>)",
			funcDisplay(pass, n.fn), n.via)
	}
	return nil, nil
}
