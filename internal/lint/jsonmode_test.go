package lint_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"slidingsample/internal/lint"
)

// TestRenderStream pins the render mode on a synthetic vet -json stream:
// '#' progress lines and package-error objects are tolerated, diagnostics
// come out as file:line:col lines tagged with their analyzer.
func TestRenderStream(t *testing.T) {
	input := `# slidingsample/internal/fake
{
	"slidingsample/internal/fake": {
		"noalias": [
			{"posn": "/tmp/b.go:9:2", "message": "second"},
			{"posn": "/tmp/a.go:3:9", "message": "first"}
		],
		"detrand": {"error": "package has type errors"}
	}
}
`
	var buf bytes.Buffer
	n, err := lint.Render(strings.NewReader(input), &buf)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if n != 2 {
		t.Fatalf("Render counted %d diagnostics, want 2", n)
	}
	want := "/tmp/a.go:3:9: first (noalias)\n/tmp/b.go:9:2: second (noalias)\n"
	if buf.String() != want {
		t.Errorf("Render output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestRenderEmpty: a stream with no diagnostics renders nothing and
// counts zero (so the CLI exits 0 and the gate passes).
func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := lint.Render(strings.NewReader("# pkg\n{\"pkg\": {}}\n"), &buf)
	if err != nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("Render = (%d, %v) with output %q; want (0, nil) and no output", n, err, buf.String())
	}
}

// TestApplyFixesStream pins the edit engine: duplicate edits collapse,
// overlapping edits are skipped, surviving edits apply back-to-front so
// byte offsets stay valid.
func TestApplyFixesStream(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "x.go")
	if err := os.WriteFile(target, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	edit := func(start, end int, new string) string {
		return fmt.Sprintf(`{"filename": %q, "start": %d, "end": %d, "new": %q}`, target, start, end, new)
	}
	input := fmt.Sprintf(`{
	"pkg": {
		"noalias": [
			{"posn": "%[1]s:1:1", "message": "m1", "suggested_fixes": [
				{"message": "f", "edits": [%[2]s, %[3]s]}
			]},
			{"posn": "%[1]s:1:2", "message": "m2", "suggested_fixes": [
				{"message": "f", "edits": [%[2]s, %[4]s]}
			]}
		]
	}
}`, target, edit(0, 5, "HELLO"), edit(6, 11, "gopher"), edit(3, 8, "CLOBBER"))

	var buf bytes.Buffer
	written, err := lint.ApplyFixes(strings.NewReader(input), &buf)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if written != 1 {
		t.Fatalf("ApplyFixes rewrote %d files, want 1\n%s", written, buf.String())
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO gopher" {
		t.Errorf("after fixes: %q, want %q", got, "HELLO gopher")
	}
	if !strings.Contains(buf.String(), "skipping overlapping fix") {
		t.Errorf("overlap skip not reported:\n%s", buf.String())
	}
}

// TestApplyFixesEndToEnd proves the make lint-fix pipeline: copy the
// noalias fixture to a scratch dir, run the real vettool in -json mode,
// pipe its stream through `swlint applyfixes`, and check the aliasing
// returns got wrapped in defensive copies that the next lint run accepts.
func TestApplyFixesEndToEnd(t *testing.T) {
	swlint := buildSwlint(t)
	dir := t.TempDir()
	copyFixture(t, "testdata/noalias", dir)

	runVet := func() []byte {
		cmd := exec.Command("go", "vet", "-vettool="+swlint, "-json", "./...")
		cmd.Dir = dir
		cmd.Env = fixtureEnv()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go vet -json: %v\n%s", err, out)
		}
		return out
	}

	apply := exec.Command(swlint, "applyfixes")
	apply.Stdin = bytes.NewReader(runVet())
	out, err := apply.CombinedOutput()
	if err != nil {
		t.Fatalf("swlint applyfixes: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "applied") {
		t.Fatalf("applyfixes applied nothing:\n%s", out)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "internal", "weighted", "weighted.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "append([]") {
		t.Errorf("weighted.go not rewritten with a defensive copy:\n%s", fixed)
	}

	// The fixed tree must be rid of the slice aliases (s.items) — those
	// carry the mechanical append-copy fix. Map aliases (s.meta) linger by
	// design: a keyed copy loop has no one-expression rewrite.
	diags, err := parseVetJSON(runVet())
	if err != nil {
		t.Fatalf("re-vet: %v", err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "returns field s.items") && !strings.Contains(d.Message, "->") {
			t.Errorf("slice aliasing survived applyfixes at %s: %s", d.Posn, d.Message)
		}
	}
}

// copyFixture clones a fixture module into dst so tests can mutate it.
func copyFixture(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture %s: %v", src, err)
	}
}
