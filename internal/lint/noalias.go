package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// NoAlias enforces the query-result ownership contract: the exported query
// entry points hand the caller a fresh slice/map — never a view of
// retained sampler state, which a caller could then mutate under the
// sampler (or observe mutating as ingest continues). The analyzer runs a
// conservative per-function taint flow (receiver fields and anything
// sliced/indexed/assigned from them are retained; make/append-to-fresh/
// composite literals are fresh) and follows static calls through the
// aliasesRetained fact, so a sharded wrapper returning a shard's live
// slice is reported at the wrapper's entry point with the cross-package
// chain. The deliberately-live accessors (SampleSlots/SlotsAt, the
// windows' Contents materializers) are not entry points.
var NoAlias = &analysis.Analyzer{
	Name: "noalias",
	Doc: "report exported query entry points (Sample, SampleAt, Values, ValuesAt, Items, " +
		"ItemsAt) that return a slice or map aliasing retained sampler state; results " +
		"must be fresh copies",
	Run:       runNoAlias,
	FactTypes: []analysis.Fact{(*aliasesRetained)(nil)},
}

// aliasesRetained marks a function whose returned slice/map may share
// backing storage with its receiver's retained state; Via records one
// witness chain.
type aliasesRetained struct {
	Via string
}

func (*aliasesRetained) AFact()           {}
func (f *aliasesRetained) String() string { return "aliasesRetained(" + f.Via + ")" }

// noaliasEntryPoints is the exported query surface whose results callers
// own outright.
var noaliasEntryPoints = map[string]bool{
	"Sample":   true,
	"SampleAt": true,
	"Values":   true,
	"ValuesAt": true,
	"Items":    true,
	"ItemsAt":  true,
}

// noaliasScopedPkg: packages whose entry points are held to the fresh-copy
// contract. Every interesting package still computes and exports facts.
func noaliasScopedPkg(path string) bool {
	return queryScopedPkg(path) ||
		pkgPathHasSuffix(path, "internal/core") ||
		pkgPathHasSuffix(path, "internal/baseline") ||
		pkgPathHasSuffix(path, "internal/apps")
}

// retNode is one function's aliasing state during the package fixpoint.
type retNode struct {
	n       *funcNode
	recv    *types.Var // receiver object, nil for plain functions
	tainted bool
	via     string
	reports []aliasReport
}

type aliasReport struct {
	ret *ast.ReturnStmt
	exp ast.Expr
	via string
}

func runNoAlias(pass *analysis.Pass) (any, error) {
	if !interestingPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	al := collectAllows(pass, "noalias")
	nodes := buildGraph(pass)

	rets := make([]*retNode, 0, len(nodes))
	byFn := make(map[*types.Func]*retNode, len(nodes))
	for _, n := range nodes {
		r := &retNode{n: n}
		if recv := n.decl.Recv; recv != nil && len(recv.List) > 0 && len(recv.List[0].Names) > 0 {
			r.recv, _ = pass.TypesInfo.Defs[recv.List[0].Names[0]].(*types.Var)
		}
		rets = append(rets, r)
		byFn[n.fn] = r
	}

	// Package-level fixpoint: a helper marked tainted in one round can
	// taint a caller's return in the next.
	for changed := true; changed; {
		changed = false
		for _, r := range rets {
			if r.tainted {
				continue
			}
			r.reports = r.reports[:0]
			analyzeReturns(pass, r, byFn)
			if len(r.reports) > 0 && !r.tainted {
				r.tainted = true
				r.via = funcDisplay(pass, r.n.fn) + " " + r.reports[0].via
				changed = true
			}
		}
	}

	for _, r := range rets {
		if r.tainted {
			pass.ExportObjectFact(r.n.fn, &aliasesRetained{Via: r.via})
		}
	}
	if !noaliasScopedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, r := range rets {
		if !r.tainted || !r.n.fn.Exported() || !noaliasEntryPoints[r.n.fn.Name()] {
			continue
		}
		for _, rep := range r.reports {
			d := analysis.Diagnostic{
				Pos: rep.ret.Pos(),
				Message: fmt.Sprintf(
					"query %s returns a value aliasing retained sampler state (%s); return a fresh copy, or justify with //swlint:allow noalias <reason>",
					funcDisplay(pass, r.n.fn), rep.via),
			}
			if fix := copyFix(pass, rep.exp); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			p := pass.Fset.Position(d.Pos)
			if !al.lines[posKey{p.Filename, p.Line}] {
				pass.Report(d)
			}
		}
	}
	return nil, nil
}

// copyFix builds the canonical defensive-copy rewrite for a returned
// slice: append([]T(nil), expr...).
func copyFix(pass *analysis.Pass, exp ast.Expr) *analysis.SuggestedFix {
	tv, ok := pass.TypesInfo.Types[exp]
	if !ok {
		return nil
	}
	if _, ok := tv.Type.Underlying().(*types.Slice); !ok {
		return nil // maps need a keyed copy loop; no mechanical rewrite
	}
	ts := types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))
	src := exprString(pass, exp)
	if src == "" {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: "return a fresh copy of the slice",
		TextEdits: []analysis.TextEdit{{
			Pos:     exp.Pos(),
			End:     exp.End(),
			NewText: []byte("append(" + ts + "(nil), " + src + "...)"),
		}},
	}
}

// exprString recovers the source text of exp from the pass's file content.
func exprString(pass *analysis.Pass, exp ast.Expr) string {
	file := pass.Fset.File(exp.Pos())
	if file == nil || pass.ReadFile == nil {
		return ""
	}
	start := file.Offset(exp.Pos())
	end := file.Offset(exp.End())
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) == file {
			src, err := pass.ReadFile(file.Name())
			if err != nil || end > len(src) {
				return ""
			}
			return string(src[start:end])
		}
	}
	return ""
}

// analyzeReturns computes r's tainted returns under the current package
// knowledge: a local taint fixpoint over assignments, then every return
// whose slice/map-typed result is tainted is recorded.
func analyzeReturns(pass *analysis.Pass, r *retNode, byFn map[*types.Func]*retNode) {
	body := r.n.decl.Body
	tainted := make(map[*types.Var]string) // local var -> witness

	var taintOf func(e ast.Expr) (string, bool)
	taintOf = func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[e].(*types.Var)
			if v == nil {
				return "", false
			}
			if via, ok := tainted[v]; ok {
				return via, true
			}
			return "", false
		case *ast.SelectorExpr:
			if selection, ok := pass.TypesInfo.Selections[e]; ok && selection.Kind() == types.FieldVal {
				// A field chain rooted at the receiver is retained state.
				if base := baseIdent(e); base != nil {
					if v, _ := pass.TypesInfo.Uses[base].(*types.Var); v != nil && v == r.recv && r.recv != nil {
						return "returns field " + exprPath(e), true
					}
				}
			}
			return taintOf(e.X)
		case *ast.IndexExpr:
			return taintOf(e.X)
		case *ast.SliceExpr:
			return taintOf(e.X)
		case *ast.ParenExpr:
			return taintOf(e.X)
		case *ast.StarExpr:
			return taintOf(e.X)
		case *ast.CallExpr:
			return taintOfCall(pass, e, taintOf, byFn)
		default:
			return "", false
		}
	}

	// Local fixpoint over assignments.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// a, b := f() — taint every slice/map lhs if the call taints.
			if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
				if via, ok := taintOf(as.Rhs[0]); ok {
					for _, lhs := range as.Lhs {
						if v := lhsVar(pass, lhs); v != nil && refLike(v.Type()) {
							if _, done := tainted[v]; !done {
								tainted[v] = via
								changed = true
							}
						}
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if via, ok := taintOf(as.Rhs[i]); ok {
					if v := lhsVar(pass, lhs); v != nil {
						if _, done := tainted[v]; !done {
							tainted[v] = via
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // closures: out of the static boundary
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			tv, ok := pass.TypesInfo.Types[res]
			if !ok || !refLike(tv.Type) {
				continue
			}
			if via, ok := taintOf(res); ok {
				r.reports = append(r.reports, aliasReport{ret: ret, exp: res, via: via})
			}
		}
		return true
	})
}

// taintOfCall classifies a call expression: append keeps its first
// argument's taint, conversions keep their operand's, fresh allocations
// cleanse, and static callees contribute their aliasesRetained fact (same
// package via the fixpoint, imported via the fact store).
func taintOfCall(pass *analysis.Pass, call *ast.CallExpr, taintOf func(ast.Expr) (string, bool), byFn map[*types.Func]*retNode) (string, bool) {
	// Conversion: []T(x) keeps x's taint.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return taintOf(call.Args[0])
		}
		return "", false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, _ := pass.TypesInfo.Uses[id].(*types.Builtin); b != nil {
			if b.Name() == "append" && len(call.Args) > 0 {
				return taintOf(call.Args[0])
			}
			return "", false // make, new, len, ...
		}
	}
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil {
		return "", false
	}
	if callee.Pkg() == pass.Pkg {
		if r := byFn[callee]; r != nil && r.tainted {
			return "-> " + r.via, true
		}
		return "", false
	}
	var f aliasesRetained
	if pass.ImportObjectFact(callee, &f) {
		return "-> " + f.Via, true
	}
	return "", false
}

// refLike reports whether t is a slice or map (the aliasable result
// shapes this analyzer polices).
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// baseIdent returns the innermost identifier of a selector chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprPath renders a selector chain for diagnostics ("s.sky.nodes").
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return "*" + exprPath(x.X)
	case *ast.IndexExpr:
		return exprPath(x.X) + "[...]"
	default:
		return "expr"
	}
}
