package lint

import (
	"go/ast"
	"strconv"

	"golang.org/x/tools/go/analysis"
)

// DetRand enforces the determinism substrate: the only source of
// randomness is seeded internal/xrand, and library code never consults
// the wall clock. A math/rand draw (unseeded, global state) or a
// time.Now-derived timestamp silently voids the uniformity guarantees
// (paper Theorems 2.1/2.2) and the replayability every conformance test
// depends on. crypto/rand is banned too: entropy is allowed only at the
// explicitly annotated default-seed bootstrap, never on a sampling path.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand, math/rand/v2, crypto/rand imports and time.Now/Since/Until calls " +
		"in non-test code; randomness must come from seeded internal/xrand and time from " +
		"caller-supplied timestamps",
	Run: runDetRand,
}

// bannedImports maps import path to the reason it is banned.
var bannedImports = map[string]string{
	"math/rand":    "global, wall-clock-seeded generator",
	"math/rand/v2": "global generator outside the seeded substrate",
	"crypto/rand":  "nondeterministic entropy",
}

// bannedTimeFuncs are the wall-clock reads; timestamps must flow in from
// the caller (or the harness's annotated timing sections).
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetRand(pass *analysis.Pass) (any, error) {
	al := collectAllows(pass, "detrand")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				al.report(imp.Pos(), "detrand: import of %s (%s); draw from seeded internal/xrand instead", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg().Path() == "time" && bannedTimeFuncs[callee.Name()] {
				al.report(call.Pos(), "detrand: call to time.%s in library code; timestamps must be caller-supplied (deterministic replay)", callee.Name())
			}
			return true
		})
	}
	return nil, nil
}
