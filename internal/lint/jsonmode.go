package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file implements the two post-processing modes of cmd/swlint, both
// consuming the `go vet -vettool=… -json` stream on stdin:
//
//	swlint render     — print one `file:line:col: message (analyzer)` line
//	                    per diagnostic (the shape CI problem matchers and
//	                    editors parse) and exit nonzero if any were found;
//	                    needed because vet's -json mode always exits 0.
//	swlint applyfixes — apply every suggested fix carried in the stream
//	                    (byte-offset edits) to the working tree; `make
//	                    lint-fix` pipes into this, and CI follows with
//	                    `git diff --exit-code` as the drift gate.
//
// The stream interleaves `# package` comment lines with JSON objects of
// shape {pkg: {analyzer: [diagnostic…] | errorobj}}; both modes tolerate
// the error-object branch by skipping values that do not decode as a
// diagnostic list.

// jsonFix mirrors x/tools analysisflags' JSONSuggestedFix.
type jsonFix struct {
	Message string         `json:"message"`
	Edits   []jsonTextEdit `json:"edits"`
}

// jsonTextEdit mirrors analysisflags' JSONTextEdit: zero-based byte
// offsets into the named file.
type jsonTextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// jsonDiagnostic mirrors analysisflags' JSONDiagnostic (the fields the
// modes need).
type jsonDiagnostic struct {
	Posn           string    `json:"posn"`
	Message        string    `json:"message"`
	SuggestedFixes []jsonFix `json:"suggested_fixes"`
}

// renderedDiag is one diagnostic tagged with the analyzer that produced it.
type renderedDiag struct {
	analyzer string
	diag     jsonDiagnostic
}

// decodeVetJSON parses a `go vet -json` stream: `#`-prefixed progress
// lines are dropped, then the concatenated JSON objects are decoded in
// sequence.
func decodeVetJSON(r io.Reader) ([]renderedDiag, error) {
	var clean strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		clean.WriteString(sc.Text())
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var out []renderedDiag
	dec := json.NewDecoder(strings.NewReader(clean.String()))
	for dec.More() {
		var pkgs map[string]map[string]json.RawMessage
		if err := dec.Decode(&pkgs); err != nil {
			return nil, fmt.Errorf("decoding vet -json stream: %w", err)
		}
		for _, analyzers := range pkgs {
			for name, raw := range analyzers {
				var diags []jsonDiagnostic
				if json.Unmarshal(raw, &diags) != nil {
					continue // package error object, not a diagnostic list
				}
				for _, d := range diags {
					out = append(out, renderedDiag{analyzer: name, diag: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].diag.Posn != out[j].diag.Posn {
			return out[i].diag.Posn < out[j].diag.Posn
		}
		return out[i].analyzer < out[j].analyzer
	})
	return out, nil
}

// Render converts a vet -json stream into file:line:col lines on w and
// returns the number of diagnostics (the caller exits nonzero if > 0).
func Render(r io.Reader, w io.Writer) (int, error) {
	diags, err := decodeVetJSON(r)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", d.diag.Posn, d.diag.Message, d.analyzer)
	}
	return len(diags), nil
}

// ApplyFixes applies every suggested fix in a vet -json stream to the
// files it names and reports what it did on w. Identical edits offered by
// several diagnostics collapse to one; edits overlapping a previously
// accepted edit in the same file are skipped (re-running lint offers them
// again on the updated tree). Returns the number of files rewritten.
func ApplyFixes(r io.Reader, w io.Writer) (int, error) {
	diags, err := decodeVetJSON(r)
	if err != nil {
		return 0, err
	}
	byFile := make(map[string][]jsonTextEdit)
	seen := make(map[string]bool)
	for _, d := range diags {
		for _, fix := range d.diag.SuggestedFixes {
			for _, e := range fix.Edits {
				key := fmt.Sprintf("%s\x00%d\x00%d\x00%s", e.Filename, e.Start, e.End, e.New)
				if seen[key] {
					continue
				}
				seen[key] = true
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	written := 0
	for _, fname := range files {
		edits := byFile[fname]
		// Apply back-to-front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(fname)
		if err != nil {
			return written, fmt.Errorf("reading %s: %w", fname, err)
		}
		applied := 0
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				fmt.Fprintf(w, "swlint: skipping out-of-range fix in %s [%d,%d)\n", fname, e.Start, e.End)
				continue
			}
			if e.End > lastStart {
				fmt.Fprintf(w, "swlint: skipping overlapping fix in %s [%d,%d); re-run lint-fix\n", fname, e.Start, e.End)
				continue
			}
			src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
			lastStart = e.Start
			applied++
		}
		if applied == 0 {
			continue
		}
		info, err := os.Stat(fname)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode()
		}
		if err := os.WriteFile(fname, src, mode); err != nil {
			return written, fmt.Errorf("writing %s: %w", fname, err)
		}
		written++
		fmt.Fprintf(w, "swlint: applied %d fix(es) to %s\n", applied, fname)
	}
	return written, nil
}
