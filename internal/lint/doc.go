// Package lint implements swlint, the repository's go/analysis invariant
// checker. Every analyzer here turns a correctness contract that was
// previously enforced by one regression test, a comment, or a debugging
// session into a whole-repo static guarantee checked by `make lint`
// (go vet -vettool over cmd/swlint):
//
//   - norandquery: query paths draw no randomness. The shard fan-out and
//     byte-determinism arguments of the serving layer (DESIGN.md §7) lean
//     on queries being pure reads of sampler state; before this analyzer
//     the invariant was pinned only by internal/weighted/norand_test.go.
//     The analyzer walks the static call graph from every query entry
//     point (Sample, SampleAt, ValuesAt, SizeAt, WeightAt, TotalWeightAt,
//     Words, EstimateAt, SumAt) in internal/weighted, internal/parallel,
//     internal/ehist, and the public root package, and reports any
//     reachable call into an xrand.Rand method. The sharded dispatchers'
//     deliberate query-time draws (slot picks over shard weights, drawn
//     sequentially after all shard prefetches) carry justified
//     //swlint:allow annotations.
//
//   - detrand: exact integer randomness lives solely in seeded
//     internal/xrand — a wall-clock-seeded or biased draw silently breaks
//     the paper's uniformity theorems (Theorems 2.1/2.2, Lemmas 3.6/3.7).
//     The analyzer forbids importing math/rand, math/rand/v2, or
//     crypto/rand and calling time.Now/time.Since/time.Until anywhere in
//     non-test code. The timing harnesses (cmd/swbench, cmd/swload) and
//     the default-seed entropy bootstrap carry annotations.
//
//   - lockorder: internal/serve's pipelined hot path depends on a
//     documented lock hierarchy (serve.Instance: mu before qmu, oracleMu
//     and any stats mutex strictly leaf; the registry Server.mu outermost
//     — see internal/serve/instance.go). The analyzer checks acquisition
//     order against that declared hierarchy (including one level of
//     intra-package transitive acquisition through static calls), flags
//     Mutex/RWMutex value copies, locks that are never released, and
//     manual Lock/Unlock pairs whose unlock is duplicated across return
//     paths — the shape that invites a missed-unlock bug on the next
//     edit; convert to defer or annotate why not (the applier loop must
//     release qmu before blocking on mu).
//
//   - errsurface: the public surface speaks errors (ErrBadWeight,
//     ErrClosed, ErrOverloaded, ...) and HTTP status codes, never bare
//     panics (the PR 5 serving-layer rule). The analyzer reports any
//     panic reachable from an exported function of the root package or
//     from internal/serve's exported methods and handlers, unless the
//     panic is a named internal panic — a constant message with the
//     repository's "pkg: ..." prefix convention, the documented
//     invariant-violation panics.
//
//   - wordsacct: the paper's optimal-memory claim is encoded in
//     hand-written Words()/MaxWords() methods (DESIGN.md §6), and a field
//     added without deciding its accounting silently falsifies them. For
//     every type with a Words()/words() footprint method, each retained
//     reference-typed field (slices, maps, embedded oracles, pointers to
//     counted structures) must be referenced somewhere in the Words
//     closure — the footprint method plus the same-type helpers it calls —
//     or carry //swlint:allow wordsacct naming the word-model exclusion
//     (recycled transport scratch, a duplicate typed view of already
//     counted shards). Channels, func values, xrand.Rand, and the sync
//     primitives are outside the model by definition.
//
//   - noalias: query results are owned by the caller. The exported entry
//     points (Sample, SampleAt, Values, ValuesAt, Items, ItemsAt) must
//     never return a slice or map aliasing retained sampler state; a
//     conservative per-function taint flow (receiver fields taint;
//     make/composite literals/append-to-fresh cleanse) plus the
//     aliasesRetained object fact resolves sharded wrappers' chains
//     cross-package. Findings on slice returns carry a SuggestedFix
//     (wrap in append([]T(nil), ...)) applied by `make lint-fix`. The
//     deliberately-live accessors (SampleSlots, SlotsAt, the window
//     Contents materializers) are not entry points.
//
//   - substratecov: a substrate registered in internal/substrate.New must
//     be wired everywhere operators meet it. The substrate pass parses the
//     mode/sampler switch (the switch IS the registry) and exports the
//     table as a package fact; the cmd/swsample pass joins it against the
//     root conformance battery (constructor name), the serve capability
//     tests, the swsample flag docs, and README's sampler table, read from
//     the module root, reporting each gap at the substrate import.
//
//   - nilness, unusedwrite: conservative local AST reimplementations of
//     the x/tools passes of the same names (upstream requires go/ssa,
//     which the vendored tool-only x/tools subset omits — see the
//     dependency policy in README). nilness flags uses of a variable
//     inside its own `== nil` branch; unusedwrite flags field writes
//     through value receivers or range-value copies that are never read
//     afterwards.
//
// # Suppression
//
// A finding that is deliberate is annotated in place:
//
//	expr // swlint directive on the offending line:
//	u := s.rng.Uint64n(total) //swlint:allow norandquery <reason>
//
//	//swlint:allow norandquery <reason>   (standalone: covers the NEXT line)
//	u := s.rng.Uint64n(total)
//
// The directive is strictly line-scoped: a standalone directive covers
// exactly the following line, a trailing directive exactly its own line.
// One directive may name several analyzers, comma-separated with no
// spaces (//swlint:allow detrand,norandquery <reason>), for a line that
// trips more than one check. A directive without a reason is itself
// reported (by every analyzer it names), and does not suppress anything.
// A directive naming an unknown analyzer is reported by norandquery (the
// designated directive owner, so the report appears exactly once). The
// reason may not contain "//".
//
// # Analysis boundary
//
// Reachability is computed over STATIC calls (functions and concrete
// methods). Calls through interfaces and function values are not
// followed; those paths stay covered by the dynamic batteries
// (conformance_test.go, norand_test.go, the -race gates). Facts propagate
// across packages via the go vet driver, so e.g. a draw introduced deep
// in internal/weighted is reported at the entry points of
// internal/parallel that reach it. Test files are ignored.
//
// # Extending
//
// New analyzers register in Analyzers() (cmd/swlint picks them up
// automatically) and follow the same shape: collectAllows first, report
// through the returned allows so //swlint:allow works, and add a fixture
// module under testdata/<name> with // want annotations (see lint_test.go
// for the harness contract). See DESIGN.md §8.
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the swlint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoRandQuery, DetRand, LockOrder, ErrSurface,
		WordsAcct, NoAlias, SubstrateCov, Nilness, UnusedWrite,
	}
}
