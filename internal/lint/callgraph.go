package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// The reachability machinery shared by norandquery and errsurface: a
// per-package static call graph plus a taint fixed point. "Static" means
// direct calls to declared functions and concrete methods — calls through
// interface values or function-typed variables are not followed (see the
// package doc's Analysis boundary note). Calls made inside function
// literals are attributed to the enclosing declaration, which matches how
// the serving layer uses closures (spawned from, and on behalf of, the
// method that declares them).

// funcNode is one function declared in the package under analysis.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	edges []edge // every call expression in body order
	via   string // taint chain ("" when the function reaches no taint)
}

// edge is a single call site. callee is nil when the call is not a
// static call to a declared function (builtins, interface dispatch,
// function values); seeds may still classify it from the CallExpr.
type edge struct {
	call   *ast.CallExpr
	callee *types.Func
}

// buildGraph collects a node per function declared in the pass's non-test
// files, with call edges in source order.
func buildGraph(pass *analysis.Pass) []*funcNode {
	var nodes []*funcNode
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{fn: fn, decl: decl}
			ast.Inspect(decl.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					n.edges = append(n.edges, edge{call: call, callee: staticCallee(pass.TypesInfo, call)})
				}
				return true
			})
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// propagate runs the taint fixed point over nodes. seed classifies a call
// site as directly tainted (returning the terminal description for the
// chain); imported looks up a taint fact on a callee from another
// package. Same-package taint flows through the node map. Chains are
// deterministic: the first qualifying edge in source order wins and a
// node's chain never changes once set.
func propagate(pass *analysis.Pass, nodes []*funcNode,
	seed func(*ast.CallExpr, *types.Func) (string, bool),
	imported func(*types.Func) (string, bool)) {

	byFn := make(map[*types.Func]*funcNode, len(nodes))
	for _, n := range nodes {
		byFn[n.fn] = n
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.via != "" {
				continue
			}
			for _, e := range n.edges {
				if desc, ok := seed(e.call, e.callee); ok {
					n.via = funcDisplay(pass, n.fn) + " -> " + desc
					changed = true
					break
				}
				if e.callee == nil {
					continue
				}
				if e.callee.Pkg() == pass.Pkg {
					if m := byFn[e.callee]; m != nil && m.via != "" {
						n.via = funcDisplay(pass, n.fn) + " -> " + m.via
						changed = true
						break
					}
				} else if via, ok := imported(e.callee); ok {
					n.via = funcDisplay(pass, n.fn) + " -> " + via
					changed = true
					break
				}
			}
		}
	}
}

// staticCallee resolves call to the declared function or concrete method
// it invokes, or nil for builtins, interface dispatch, and calls through
// function values. Instantiated generics are normalized to their origin
// object — declarations define origins, so graph edges and facts must
// key on them.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := typeutil.Callee(info, call).(*types.Func)
	if fn != nil {
		fn = fn.Origin()
	}
	return fn
}

// funcDisplay renders fn for taint chains: "(*WOR[T]).SampleAt" for
// methods, "pkg.New" for cross-package functions, "new" locally.
func funcDisplay(pass *analysis.Pass, fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// interestingPkg gates fact computation to this repository's packages
// (and the fixture modules, whose paths embed "slidingsample" for this
// purpose). The vet driver runs swlint over every dependency, including
// the standard library; without the gate errsurface would chase panics
// through encoding/json and friends, drowning the repo-specific contract
// in unfixable noise.
func interestingPkg(path string) bool {
	return strings.Contains(path, "slidingsample")
}

// pkgPathHasSuffix reports whether path is exactly suffix or ends with
// "/"+suffix — path-segment-aware matching so fixture module paths mirror
// real package scoping.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
