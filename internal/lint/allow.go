package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directivePrefix introduces a suppression comment. Full grammar:
//
//	//swlint:allow <analyzer>[,<analyzer>...] <reason...>
//
// Trailing on a code line it covers that line; standalone on its own line
// it covers exactly the next line. The analyzer field is one name or a
// comma-separated list (no spaces) when one line trips several analyzers.
// The reason is mandatory and free-form but may not contain "//" (so a
// trailing "// want" marker in fixtures is not swallowed into the reason).
const directivePrefix = "//swlint:allow"

// analyzerNames lists every analyzer swlint ships. Directives naming
// anything else are themselves violations, reported by the directive
// owner (norandquery) so each bad directive is reported exactly once
// rather than once per analyzer.
var analyzerNames = map[string]bool{
	"norandquery":  true,
	"detrand":      true,
	"lockorder":    true,
	"errsurface":   true,
	"wordsacct":    true,
	"noalias":      true,
	"substratecov": true,
	"nilness":      true,
	"unusedwrite":  true,
}

// directiveOwner is the analyzer that reports malformed directives which
// no single analyzer can claim (missing or unknown analyzer name).
const directiveOwner = "norandquery"

type posKey struct {
	file string
	line int
}

// allows is one analyzer's per-pass view of the //swlint:allow directives:
// the set of (file, line) positions where this analyzer's reports are
// suppressed. Diagnostics must go through report so suppression applies.
type allows struct {
	pass  *analysis.Pass
	lines map[posKey]bool
}

// collectAllows scans the pass's non-test files for //swlint:allow
// directives and returns the suppression set for the analyzer called
// name. Malformed directives are diagnosed here: a directive naming this
// analyzer without a reason is reported (and suppresses nothing); a
// directive with a missing or unknown analyzer name is reported iff name
// is the directive owner.
func collectAllows(pass *analysis.Pass, name string) *allows {
	a := &allows{pass: pass, lines: make(map[posKey]bool)}
	owner := name == directiveOwner
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		code := codeLines(f, pass.Fset)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //swlint:allowance — not a directive
				}
				// Cut at an interior "//" so fixture want-markers sharing
				// the comment are not parsed as part of the reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				p := pass.Fset.Position(c.Pos())
				if len(fields) == 0 {
					if owner {
						pass.Reportf(c.Pos(), "swlint:allow directive is missing an analyzer name")
					}
					continue
				}
				// One directive may name several analyzers for a line that
				// trips more than one check: //swlint:allow a,b <reason>.
				names := strings.Split(fields[0], ",")
				unknown := ""
				mine := false
				for _, nm := range names {
					if !analyzerNames[nm] {
						unknown = nm
					}
					if nm == name {
						mine = true
					}
				}
				switch {
				case unknown != "":
					if owner {
						pass.Reportf(c.Pos(), "swlint:allow names unknown analyzer %q (have norandquery, detrand, lockorder, errsurface, wordsacct, noalias, substratecov, nilness, unusedwrite)", unknown)
					}
				case len(fields) == 1:
					// Named but reasonless: the named analyzer owns the
					// report, and the directive suppresses nothing.
					if mine {
						pass.Reportf(c.Pos(), "swlint:allow %s is missing a reason; reasonless allows are not honored", name)
					}
				default:
					if mine {
						target := p.Line
						if !code[p.Line] {
							// Standalone directive line: covers the next
							// line only (strictly line-scoped; it does
							// not cascade further).
							target = p.Line + 1
						}
						a.lines[posKey{p.Filename, target}] = true
					}
				}
			}
		}
	}
	return a
}

// report emits a diagnostic unless an allow directive covers its line.
func (a *allows) report(pos token.Pos, format string, args ...any) {
	p := a.pass.Fset.Position(pos)
	if a.lines[posKey{p.Filename, p.Line}] {
		return
	}
	a.pass.Reportf(pos, format, args...)
}

// codeLines reports which lines of f hold code tokens (declarations and
// their bodies, plus the package clause). A directive on such a line is
// trailing; on any other line it is standalone and covers the next line.
func codeLines(f *ast.File, fset *token.FileSet) map[int]bool {
	lines := map[int]bool{
		fset.Position(f.Package).Line: true,
	}
	for _, d := range f.Decls {
		ast.Inspect(d, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				// Comments hang off declarations in the AST but are not
				// code: a directive inside a doc comment is standalone.
				return false
			}
			lines[fset.Position(n.Pos()).Line] = true
			if end := n.End(); end.IsValid() {
				lines[fset.Position(end-1).Line] = true
			}
			return true
		})
	}
	return lines
}

// isTestFile reports whether f is a _test.go file. swlint's invariants
// are library contracts; tests deliberately reach into internals (and the
// deterministic-clock harnesses fake time), so test files are out of
// scope for every analyzer.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
