package ehist

import (
	"io"
	"math"

	"slidingsample/internal/snap"
)

// Snapshot kind tags.
const (
	kindCounter  = "ehist.Counter"
	kindWeighted = "ehist.Weighted"
)

// Snapshot writes the counter's full state (header included) to w.
func (c *Counter) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindCounter)
	c.encode(sw)
	return sw.Err()
}

// encode writes the body on a shared writer (for embedding inside an
// enclosing sampler snapshot).
func (c *Counter) encode(w *snap.Writer) {
	w.I64(c.w.T0)
	w.Int(c.maxPerSize)
	w.I64(c.now)
	w.Bool(c.started)
	w.Int(c.maxWords)
	w.Len(len(c.buckets))
	for _, b := range c.buckets {
		w.I64(b.newTS)
		w.I64(b.oldTS)
		w.U64(b.size)
	}
}

// Restore reads a Counter snapshot written by Snapshot.
func Restore(r io.Reader) (*Counter, error) {
	sr, err := snap.NewReader(r, kindCounter)
	if err != nil {
		return nil, err
	}
	c := decodeCounter(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// decodeCounter reads the body on a shared reader.
func decodeCounter(r *snap.Reader) *Counter {
	c := &Counter{}
	c.w.T0 = r.I64()
	c.maxPerSize = r.Int()
	c.now = r.I64()
	c.started = r.Bool()
	c.maxWords = r.Int()
	if r.Err() != nil {
		return c
	}
	if c.w.T0 <= 0 {
		r.Failf("ehist.Counter with t0 %d", c.w.T0)
		return c
	}
	if c.maxPerSize < 2 {
		r.Failf("ehist.Counter with maxPerSize %d", c.maxPerSize)
		return c
	}
	n := r.Len(-1)
	if r.Err() != nil {
		return c
	}
	c.buckets = make([]bucket, 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		c.buckets = append(c.buckets, bucket{newTS: r.I64(), oldTS: r.I64(), size: r.U64()})
	}
	return c
}

// Snapshot writes the weight histogram's full state (header included).
func (c *Weighted) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindWeighted)
	c.encode(sw)
	return sw.Err()
}

func (c *Weighted) encode(w *snap.Writer) {
	w.I64(c.w.T0)
	w.F64(c.eps)
	w.F64(c.total)
	w.I64(c.now)
	w.Bool(c.started)
	w.Int(c.maxWords)
	w.Len(len(c.buckets))
	for _, b := range c.buckets {
		w.I64(b.newTS)
		w.I64(b.oldTS)
		w.F64(b.sum)
	}
}

// RestoreWeighted reads a Weighted snapshot written by Snapshot.
func RestoreWeighted(r io.Reader) (*Weighted, error) {
	sr, err := snap.NewReader(r, kindWeighted)
	if err != nil {
		return nil, err
	}
	c := decodeWeighted(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

func decodeWeighted(r *snap.Reader) *Weighted {
	c := &Weighted{}
	c.w.T0 = r.I64()
	c.eps = r.F64()
	c.total = r.F64()
	c.now = r.I64()
	c.started = r.Bool()
	c.maxWords = r.Int()
	if r.Err() != nil {
		return c
	}
	if c.w.T0 <= 0 {
		r.Failf("ehist.Weighted with t0 %d", c.w.T0)
		return c
	}
	if !(c.eps > 0 && c.eps < 1) {
		r.Failf("ehist.Weighted with eps %v", c.eps)
		return c
	}
	if math.IsNaN(c.total) || math.IsInf(c.total, 0) {
		r.Failf("ehist.Weighted with total %v", c.total)
		return c
	}
	n := r.Len(-1)
	if r.Err() != nil {
		return c
	}
	c.buckets = make([]wbucket, 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		c.buckets = append(c.buckets, wbucket{newTS: r.I64(), oldTS: r.I64(), sum: r.F64()})
	}
	return c
}

// EncodeCounter/DecodeCounter and EncodeWeighted/DecodeWeighted expose the
// header-less body codec for enclosing samplers (weighted TS substrates
// and the sharded dispatchers embed these oracles).

// EncodeCounter writes a Counter body (nil-aware) on a shared writer.
func EncodeCounter(w *snap.Writer, c *Counter) {
	if c == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	c.encode(w)
}

// DecodeCounter reads a Counter body written by EncodeCounter.
func DecodeCounter(r *snap.Reader) *Counter {
	if !r.Bool() {
		return nil
	}
	return decodeCounter(r)
}

// EncodeWeighted writes a Weighted body (nil-aware) on a shared writer.
func EncodeWeighted(w *snap.Writer, c *Weighted) {
	if c == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	c.encode(w)
}

// DecodeWeighted reads a Weighted body written by EncodeWeighted.
func DecodeWeighted(r *snap.Reader) *Weighted {
	if !r.Bool() {
		return nil
	}
	return decodeWeighted(r)
}
