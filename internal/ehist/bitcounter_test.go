package ehist

import (
	"math"
	"testing"

	"slidingsample/internal/xrand"
)

// exactBitWindow is the brute-force oracle: a ring of the last n bits.
type exactBitWindow struct {
	n    int
	bits []bool
	next int
	fill int
}

func newExactBitWindow(n int) *exactBitWindow {
	return &exactBitWindow{n: n, bits: make([]bool, n)}
}

func (w *exactBitWindow) observe(b bool) {
	w.bits[w.next] = b
	w.next = (w.next + 1) % w.n
	if w.fill < w.n {
		w.fill++
	}
}

func (w *exactBitWindow) count() uint64 {
	c := uint64(0)
	for i := 0; i < w.fill; i++ {
		if w.bits[i] {
			c++
		}
	}
	return c
}

func TestBitCounterExactWhileSmall(t *testing.T) {
	c := NewBitCounter(100, 4)
	if c.Estimate() != 0 {
		t.Fatal("empty counter nonzero")
	}
	pattern := []bool{true, false, true, true, false, true}
	want := uint64(0)
	for _, b := range pattern {
		c.Observe(b)
		if b {
			want++
		}
		if got := c.Estimate(); got != want {
			t.Fatalf("estimate %d, want %d", got, want)
		}
	}
}

func TestBitCounterRelativeError(t *testing.T) {
	for _, r := range []int{2, 4, 8} {
		for _, density := range []uint64{2, 5} { // a 1 every `density` positions
			c := NewBitCounter(1000, r)
			oracle := newExactBitWindow(1000)
			bound := 1.0 / float64(r-1)
			for i := uint64(0); i < 20000; i++ {
				bit := i%density == 0
				c.Observe(bit)
				oracle.observe(bit)
				truth := float64(oracle.count())
				if truth == 0 {
					continue
				}
				got := float64(c.Estimate())
				if rel := math.Abs(got-truth) / truth; rel > bound+1e-9 {
					t.Fatalf("r=%d density=%d step %d: %v vs %v (rel %.3f > %.3f)",
						r, density, i, got, truth, rel, bound)
				}
			}
		}
	}
}

func TestBitCounterRandomBits(t *testing.T) {
	rng := xrand.New(1)
	c := NewBitCounterEps(512, 0.1)
	oracle := newExactBitWindow(512)
	for i := 0; i < 30000; i++ {
		bit := rng.Uint64n(3) == 0
		c.Observe(bit)
		oracle.observe(bit)
		truth := float64(oracle.count())
		if truth == 0 {
			continue
		}
		got := float64(c.Estimate())
		if rel := math.Abs(got-truth) / truth; rel > 0.1+1e-9 {
			t.Fatalf("step %d: %v vs %v (rel %.3f)", i, got, truth, rel)
		}
	}
}

func TestBitCounterAllZeros(t *testing.T) {
	c := NewBitCounter(64, 4)
	for i := 0; i < 1000; i++ {
		c.Observe(false)
	}
	if got := c.Estimate(); got != 0 {
		t.Fatalf("all-zero stream estimated %d", got)
	}
	if c.Buckets() != 0 {
		t.Fatal("zero bits created buckets")
	}
}

func TestBitCounterBurstExpires(t *testing.T) {
	c := NewBitCounter(10, 4)
	for i := 0; i < 10; i++ {
		c.Observe(true)
	}
	if got := c.Estimate(); got < 8 {
		t.Fatalf("burst undercounted: %d", got)
	}
	for i := 0; i < 10; i++ {
		c.Observe(false)
	}
	if got := c.Estimate(); got != 0 {
		t.Fatalf("burst did not expire: %d", got)
	}
}

func TestBitCounterLogarithmicMemory(t *testing.T) {
	c := NewBitCounter(1<<40, 4)
	for i := 0; i < 100000; i++ {
		c.Observe(true)
	}
	maxBuckets := (4 + 1) * (int(math.Log2(100000)) + 2)
	if c.Buckets() > maxBuckets {
		t.Fatalf("buckets %d exceed bound %d", c.Buckets(), maxBuckets)
	}
	if c.Words() != 2+3*c.Buckets() || c.MaxWords() < c.Words() {
		t.Fatal("words accounting broken")
	}
	if c.Pos() != 100000 {
		t.Fatalf("Pos = %d", c.Pos())
	}
}

func TestBitCounterConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBitCounter(0, 4) },
		func() { NewBitCounter(8, 1) },
		func() { NewBitCounterEps(8, 0) },
		func() { NewBitCounterEps(8, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}
