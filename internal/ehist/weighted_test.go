package ehist

import (
	"math"
	"sync"
	"testing"

	"slidingsample/internal/xrand"
)

// wtruth is an exact sliding-weight materializer (O(window), test only).
type wtruth struct {
	t0  int64
	ts  []int64
	wts []float64
}

func (g *wtruth) observe(ts int64, w float64) {
	g.ts = append(g.ts, ts)
	g.wts = append(g.wts, w)
}

func (g *wtruth) sumAt(now int64) float64 {
	total := 0.0
	for i, ts := range g.ts {
		if now-ts < g.t0 { // test streams stay far from the int64 edges
			total += g.wts[i]
		}
	}
	return total
}

// TestWeightedAccuracy: the (1±eps) bound against ground truth under a
// heavy-tailed weight law — occasional elements carry 10^4x the typical
// weight, which is exactly the shape that breaks a count-based cascade (a
// head bucket of ε·n ELEMENTS can hold most of the window's WEIGHT). Probes
// run at arrival times and at query times past the last arrival.
func TestWeightedAccuracy(t *testing.T) {
	const (
		t0  = 256
		m   = 30000
		eps = 0.1
	)
	c := NewWeighted(t0, eps)
	truth := &wtruth{t0: t0}
	rng := xrand.New(7)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(3) == 0 {
			ts += int64(rng.Uint64n(5))
		}
		w := float64(rng.Uint64n(9) + 1)
		if rng.Uint64n(97) == 0 {
			w *= 1e4 // heavy tail
		}
		c.Observe(ts, w)
		truth.observe(ts, w)
		if i%23 != 0 {
			continue
		}
		probe := ts + int64(rng.Uint64n(t0/2))
		got, want := c.SumAt(probe), truth.sumAt(probe)
		if want == 0 {
			if got != 0 {
				t.Fatalf("step %d: SumAt=%g on an empty window", i, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > eps+1e-9 {
			t.Fatalf("step %d: SumAt=%g vs W(t)=%g (rel %.4f > %.2f)", i, got, want, rel, eps)
		}
	}
}

// TestWeightedReadOnlyQueries: SumAt never advances the clock, so a
// wall-clock query may be followed by an older (still non-decreasing)
// arrival, and repeated queries are idempotent.
func TestWeightedReadOnlyQueries(t *testing.T) {
	c := NewWeighted(100, 0.1)
	c.Observe(10, 2)
	c.Observe(12, 3)
	future := c.SumAt(90)
	if future != 5 {
		t.Fatalf("SumAt(90) = %g, want 5", future)
	}
	if again := c.SumAt(90); again != future {
		t.Fatalf("repeated query diverged: %g vs %g", again, future)
	}
	c.Observe(15, 7) // older than the query time: must not panic
	if got := c.Sum(); got != 12 {
		t.Fatalf("Sum = %g after post-query arrival, want 12", got)
	}
	// A query older than the arrival clock answers at the clock.
	if got := c.SumAt(0); got != 12 {
		t.Fatalf("SumAt(0) = %g, want the at-clock answer 12", got)
	}
}

// TestWeightedExactWhileHeadInside: while no surviving bucket straddles the
// window boundary — in particular while the stream is younger than the
// window — the sum is exact.
func TestWeightedExactWhileYoung(t *testing.T) {
	c := NewWeighted(1<<20, 0.05)
	total := 0.0
	rng := xrand.New(3)
	for i := 0; i < 5000; i++ {
		w := float64(rng.Uint64n(100) + 1)
		total += w
		c.Observe(int64(i), w)
	}
	if got := c.Sum(); math.Abs(got-total) > 1e-6*total {
		t.Fatalf("young-stream sum %g, want exact %g", got, total)
	}
}

// TestWeightedBucketBound: the bucket count stays O(eps^-1 · log(W/wmin)).
func TestWeightedBucketBound(t *testing.T) {
	const (
		t0  = 1 << 30
		m   = 200000
		eps = 0.1
	)
	c := NewWeighted(t0, eps)
	rng := xrand.New(5)
	peak := 0
	for i := 0; i < m; i++ {
		c.Observe(int64(i), float64(rng.Uint64n(16)+1))
		if c.Buckets() > peak {
			peak = c.Buckets()
		}
	}
	// W <= 16m, wmin = 1: 2·log_{1+eps}(W) + slack.
	bound := int(2*math.Log(16*float64(m))/math.Log1p(eps)) + 8
	if peak > bound {
		t.Fatalf("peak buckets %d above the O(eps^-1 log(W/wmin)) bound %d", peak, bound)
	}
	if c.MaxWords() < c.Words() || c.Words() != 3+3*c.Buckets() {
		t.Fatal("words accounting broken")
	}
}

// TestWeightedPanics: constructor and input validation.
func TestWeightedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"t0":       func() { NewWeighted(0, 0.1) },
		"eps-lo":   func() { NewWeighted(10, 0) },
		"eps-hi":   func() { NewWeighted(10, 1) },
		"badw":     func() { NewWeighted(10, 0.1).Observe(0, 0) },
		"infw":     func() { NewWeighted(10, 0.1).Observe(0, math.Inf(1)) },
		"nanw":     func() { NewWeighted(10, 0.1).Observe(0, math.NaN()) },
		"backward": func() { c := NewWeighted(10, 0.1); c.Observe(5, 1); c.Observe(4, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// TestWeightedConcurrentQueries mirrors the Counter read-path race test:
// with SumAt read-only, a Weighted behind an RWMutex serves concurrent
// readers holding only the read lock while a writer Observes under the
// write lock. Run under -race (a CI step for this package).
func TestWeightedConcurrentQueries(t *testing.T) {
	c := NewWeighted(256, 0.1)
	var mu sync.RWMutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := int64(r * 100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				c.SumAt(probe)
				c.Sum()
				mu.RUnlock()
				probe += 37
			}
		}(r)
	}
	for ts := int64(0); ts < 20000; ts++ {
		mu.Lock()
		c.Observe(ts, float64(ts%13)+1)
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}
