package ehist

// bitcounter.go implements the ORIGINAL Datar–Gionis–Indyk–Motwani setting:
// counting the 1s among the last n positions of a bit stream ("how many
// errors among the last n requests"), with (1±ε) error in O(ε⁻¹·log²n)
// bits. Counter (ehist.go) is the timestamp-window adaptation; BitCounter
// is the sequence-window one. Both exist because the Section 5 estimators
// need window-denominated counts in both window models.

// bbucket is one bucket of the bit counter: the stream position of its most
// recent 1, the position of its oldest 1, and its size (count of 1s, a
// power of two).
type bbucket struct {
	newPos uint64
	oldPos uint64
	size   uint64
}

// BitCounter approximately counts the 1s among the last n stream positions.
type BitCounter struct {
	n          uint64
	maxPerSize int
	buckets    []bbucket // oldest first
	pos        uint64    // positions observed so far
	maxWords   int
}

// NewBitCounter returns a counter over a window of the last n positions
// with relative error at most 1/(maxPerSize-1). maxPerSize must be >= 2.
func NewBitCounter(n uint64, maxPerSize int) *BitCounter {
	if n == 0 {
		panic("ehist: NewBitCounter with n == 0")
	}
	if maxPerSize < 2 {
		panic("ehist: NewBitCounter with maxPerSize < 2")
	}
	return &BitCounter{n: n, maxPerSize: maxPerSize}
}

// NewBitCounterEps returns a counter with relative error at most eps.
func NewBitCounterEps(n uint64, eps float64) *BitCounter {
	if eps <= 0 || eps >= 1 {
		panic("ehist: NewBitCounterEps with eps outside (0,1)")
	}
	return NewBitCounter(n, int(1/eps)+2)
}

// Observe records the next stream position carrying the given bit.
func (c *BitCounter) Observe(bit bool) {
	p := c.pos
	c.pos++
	c.expire()
	if !bit {
		return
	}
	c.buckets = append(c.buckets, bbucket{newPos: p, oldPos: p, size: 1})
	c.cascade()
	if w := c.Words(); w > c.maxWords {
		c.maxWords = w
	}
}

func (c *BitCounter) cascade() {
	size := uint64(1)
	for {
		first, count := -1, 0
		for i, b := range c.buckets {
			if b.size == size {
				if first < 0 {
					first = i
				}
				count++
			}
		}
		if count <= c.maxPerSize {
			return
		}
		second := first + 1
		for second < len(c.buckets) && c.buckets[second].size != size {
			second++
		}
		if second >= len(c.buckets) {
			return
		}
		merged := bbucket{
			newPos: c.buckets[second].newPos,
			oldPos: c.buckets[first].oldPos,
			size:   size * 2,
		}
		c.buckets = append(c.buckets[:second], c.buckets[second+1:]...)
		c.buckets[first] = merged
		size *= 2
	}
}

// active reports whether position p is inside the window once `pos`
// positions have been observed: the window is [pos-n, pos-1].
func (c *BitCounter) active(p uint64) bool {
	return p+c.n >= c.pos
}

// expire drops buckets whose newest 1 left the window, shifting the
// survivors in place with a zeroed tail (same discipline as Counter.expire:
// no per-expiry reallocation, no stale bucket copies in the slack).
func (c *BitCounter) expire() {
	i := 0
	for i < len(c.buckets) && !c.active(c.buckets[i].newPos) {
		i++
	}
	if i > 0 {
		m := copy(c.buckets, c.buckets[i:])
		clear(c.buckets[m:])
		c.buckets = c.buckets[:m]
	}
}

// Estimate returns the approximate number of 1s among the last n positions.
// Exact whenever the oldest bucket lies entirely inside the window.
func (c *BitCounter) Estimate() uint64 {
	c.expire()
	if len(c.buckets) == 0 {
		return 0
	}
	total := uint64(0)
	for _, b := range c.buckets {
		total += b.size
	}
	if c.active(c.buckets[0].oldPos) {
		return total
	}
	return total - c.buckets[0].size/2
}

// Pos returns the number of positions observed.
func (c *BitCounter) Pos() uint64 { return c.pos }

// Buckets returns the current bucket count (diagnostics).
func (c *BitCounter) Buckets() int { return len(c.buckets) }

// Words reports the footprint under the DESIGN.md §6 model: 3 words per
// bucket plus two scalars.
func (c *BitCounter) Words() int { return 2 + 3*len(c.buckets) }

// MaxWords returns the peak footprint.
func (c *BitCounter) MaxWords() int { return c.maxWords }
