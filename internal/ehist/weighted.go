// weighted.go implements the exponential histogram over WEIGHTS: a (1±ε)
// oracle for the total weight of the active window elements, the sum
// analogue of Counter. It is what weighted cross-shard composition needs
// (ROADMAP "Weighted sharding"): the dispatcher draws a shard for each
// with-replacement pick proportionally to the shard's active WEIGHT, which —
// like the active count — cannot be tracked exactly in sublinear space.
//
// The bucket layout is Counter's (a run of consecutive arrivals with the
// timestamps of its oldest and newest elements), but values ADD: a bucket
// records the summed weight of its run. The merge rule has to change with
// it. Counter cascades on bucket COUNT (merge the two oldest of a
// power-of-two size), which bounds the straddling head bucket's COUNT by
// ε·n — but a single heavy element can make the head bucket's WEIGHT an
// arbitrary fraction of the window total, so the count cascade transfers no
// sum guarantee. Instead the merge condition is stated directly on sums:
//
//	merge adjacent buckets j, j+1  iff  S_j + S_{j+1} ≤ ε · Σ_{i>j+1} S_i.
//
// A merged bucket therefore satisfies S_j ≤ ε·(weight of strictly newer
// buckets) at merge time, and the bound only strengthens afterwards:
// weights are positive, newer buckets are appended forever, and expiry
// drops an oldest-first prefix (a newer bucket can never die while an older
// one is alive), so the newer-suffix sum never shrinks while bucket j
// lives. At query time the dead prefix is dropped; if the surviving head
// bucket lies entirely inside the window the sum is EXACT (in particular a
// never-merged singleton head is always exact — its oldest element is its
// newest), and if it straddles the boundary it contributes half its sum,
// for an absolute error of at most S_head/2 ≤ (ε/2)·(newer suffix) ≤
// (ε/2)·(true active weight). Relative error at most ε/2 — the same shape
// as Counter's half-head-bucket argument, carried by the sum invariant
// instead of the size cascade.
//
// Space: with no adjacent pair mergeable, suffix sums grow by a factor
// (1+ε) every two buckets, so the histogram holds O(ε⁻¹·log(W/w_min))
// buckets for total ingested active weight W and minimum element weight
// w_min — the weight-domain analogue of Counter's O(ε⁻¹·log n).
//
// Queries are READ-ONLY exactly like Counter's: SumAt computes expiry
// against the query time without persisting it, so a Weighted may serve
// concurrent SumAt callers under an RWMutex read lock while only Observe
// requires exclusive access.

package ehist

import (
	"math"

	"slidingsample/internal/window"
)

// wbucket is one weight-histogram bucket: a run of consecutive arrivals
// with their summed weight.
type wbucket struct {
	newTS int64   // timestamp of the run's most recent element (expiry)
	oldTS int64   // timestamp of the run's oldest element (straddle test)
	sum   float64 // total weight of the run
}

// Weighted approximately tracks the total weight of the stream elements
// whose timestamps are still inside a sliding window of horizon t0.
type Weighted struct {
	w       window.Timestamp
	eps     float64
	buckets []wbucket // oldest first
	// total is the running sum over the retained buckets, maintained by
	// Observe and expire so compress never re-walks the histogram to price
	// its merge condition — this is the single-producer ingest hot path of
	// every sharded weighted sampler. Merges move weight between buckets
	// without changing it, so only arrivals add and expiry subtracts; the
	// incremental float drift is ~1 ulp per operation, vanishing next to
	// the ε the merge condition already tolerates.
	total    float64
	now      int64
	started  bool
	maxWords int
}

// NewWeighted returns a weight histogram with horizon t0 and relative error
// at most eps. Panics on bad parameters.
func NewWeighted(t0 int64, eps float64) *Weighted {
	if t0 <= 0 {
		panic("ehist: NewWeighted with t0 <= 0")
	}
	if eps <= 0 || eps >= 1 {
		panic("ehist: NewWeighted with eps outside (0,1)")
	}
	c := &Weighted{w: window.Timestamp{T0: t0}, eps: eps}
	c.maxWords = c.Words()
	return c
}

// Observe records one arrival of weight wt at time ts (non-decreasing).
// The weight must be positive and finite.
func (c *Weighted) Observe(ts int64, wt float64) {
	if c.started && ts < c.now {
		panic("ehist: time went backwards")
	}
	if !(wt > 0) || math.IsInf(wt, 1) {
		panic("ehist: weight must be positive and finite")
	}
	c.now = ts
	c.started = true
	c.expire()
	c.buckets = append(c.buckets, wbucket{newTS: ts, oldTS: ts, sum: wt})
	c.total += wt
	c.compress()
	if w := c.Words(); w > c.maxWords {
		c.maxWords = w
	}
}

// compress restores the merge invariant: walking oldest-first, adjacent
// buckets whose combined sum is at most eps times the weight of all
// strictly newer buckets are merged (staying in place to retry the merged
// bucket against its new neighbor). The two newest buckets never merge —
// their newer suffix is empty — so fresh arrivals are always exact.
func (c *Weighted) compress() {
	prefix := 0.0
	j := 0
	for j+1 < len(c.buckets) {
		pair := c.buckets[j].sum + c.buckets[j+1].sum
		if pair <= c.eps*(c.total-prefix-pair) {
			c.buckets[j] = wbucket{
				newTS: c.buckets[j+1].newTS,
				oldTS: c.buckets[j].oldTS,
				sum:   pair,
			}
			c.buckets = append(c.buckets[:j+1], c.buckets[j+2:]...)
			continue
		}
		prefix += c.buckets[j].sum
		j++
	}
}

// expire drops buckets whose most recent element has left the window,
// shifting the survivors in place (the same discipline as Counter.expire;
// wbuckets hold no pointers, so the vacated tail needs no zeroing for leak
// purposes but gets it anyway for symmetry).
func (c *Weighted) expire() {
	i := 0
	for i < len(c.buckets) && c.w.Expired(c.buckets[i].newTS, c.now) {
		c.total -= c.buckets[i].sum
		i++
	}
	if i > 0 {
		m := copy(c.buckets, c.buckets[i:])
		clear(c.buckets[m:])
		c.buckets = c.buckets[:m]
		if m == 0 {
			c.total = 0 // resynchronize the running sum on a drained window
		}
	}
}

// SumAt returns the approximate total weight of the active elements at time
// now. The query is READ-ONLY: expiry is computed against the query time
// without persisting it, so the histogram's clock — which only Observe
// advances — is never moved by a query, and an arrival with ts < now
// remains legal afterwards. A query older than the latest arrival is
// answered at the arrival clock (time never rewinds). The result is exact
// whenever the oldest surviving bucket lies entirely inside the window, and
// within (1±eps) always.
func (c *Weighted) SumAt(now int64) float64 {
	if !c.started {
		return 0
	}
	if now < c.now {
		now = c.now
	}
	i := 0
	for i < len(c.buckets) && c.w.Expired(c.buckets[i].newTS, now) {
		i++
	}
	if i == len(c.buckets) {
		return 0
	}
	total := 0.0
	for _, b := range c.buckets[i:] {
		total += b.sum
	}
	if c.w.Active(c.buckets[i].oldTS, now) {
		return total // head bucket fully inside the window: exact
	}
	return total - c.buckets[i].sum/2
}

// Sum returns the approximate active weight at the latest observed time.
func (c *Weighted) Sum() float64 { return c.SumAt(c.now) }

// Buckets returns the current number of buckets (diagnostics).
func (c *Weighted) Buckets() int { return len(c.buckets) }

// Words implements the DESIGN.md §6 cost model: each bucket stores two
// timestamps and a sum (3 words), plus three scalars (clock, eps, the
// running total) — Counter's shape plus the running sum.
func (c *Weighted) Words() int { return 3 + 3*len(c.buckets) }

// MaxWords returns the peak footprint.
func (c *Weighted) MaxWords() int { return c.maxWords }
