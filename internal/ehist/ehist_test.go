package ehist

import (
	"math"
	"sync"
	"testing"

	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func TestCounterExactWhileSmall(t *testing.T) {
	c := New(100, 4)
	if c.Estimate() != 0 {
		t.Fatal("empty counter nonzero")
	}
	for i := 0; i < 4; i++ {
		c.Observe(int64(i))
		// While every bucket has size 1, the estimate is total - 0 = exact.
		if got := c.Estimate(); got != uint64(i+1) {
			t.Fatalf("after %d arrivals estimate %d", i+1, got)
		}
	}
}

func TestCounterRelativeError(t *testing.T) {
	// Steady stream, window t0=1000 ticks, 1 element per tick: true count
	// is min(i+1, 1000). Check the documented bound 1/(2(r-1)).
	for _, r := range []int{2, 4, 8} {
		c := New(1000, r)
		bound := 1.0 / float64(r-1)
		for i := 0; i < 20000; i++ {
			c.Observe(int64(i))
			truth := float64(i + 1)
			if truth > 1000 {
				truth = 1000
			}
			got := float64(c.Estimate())
			if rel := math.Abs(got-truth) / truth; rel > bound+1e-9 {
				t.Fatalf("r=%d step %d: estimate %.0f vs true %.0f (rel %.3f > bound %.3f)",
					r, i, got, truth, rel, bound)
			}
		}
	}
}

func TestCounterBursty(t *testing.T) {
	const t0 = 64
	rng := xrand.New(1)
	c := NewEps(t0, 0.1)
	truth := window.NewTSBuffer[struct{}](t0)
	ts := int64(0)
	for i := 0; i < 30000; i++ {
		if rng.Uint64n(6) == 0 {
			ts += int64(rng.Uint64n(5))
		}
		c.Observe(ts)
		truth.Observe(struct {
			Value struct{}
			Index uint64
			TS    int64
		}{TS: ts, Index: uint64(i)})
		got := float64(c.Estimate())
		want := float64(truth.Len())
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 0.1+1e-9 {
			t.Fatalf("step %d: estimate %.0f vs true %.0f (rel %.3f)", i, got, want, rel)
		}
	}
}

// TestQueryReadOnly is the regression test for the serving-path bug: a
// query at a wall-clock time far past the last arrival must NOT advance the
// counter's clock or destroy its buckets, so a later legitimate arrival
// with a slightly older timestamp still works and still counts everything.
// Pre-fix, EstimateAt persisted the query time and the follow-up Observe
// panicked "time went backwards".
func TestQueryReadOnly(t *testing.T) {
	c := New(100, 4)
	c.Observe(0)
	if got := c.EstimateAt(1 << 40); got != 0 {
		t.Fatalf("estimate %d far past the horizon, want 0", got)
	}
	c.Observe(1) // must not panic: only arrivals advance the clock
	if got := c.Estimate(); got != 2 {
		t.Fatalf("estimate %d after the post-query arrival, want 2", got)
	}
	// The pre-query state survived intact: a query inside the window still
	// sees both arrivals, and repeated far-future queries stay harmless.
	if got := c.EstimateAt(50); got != 2 {
		t.Fatalf("estimate %d at t=50, want 2", got)
	}
	c.EstimateAt(1 << 40)
	c.EstimateAt(1 << 41)
	c.Observe(2)
	if got := c.Estimate(); got != 3 {
		t.Fatalf("estimate %d after repeated future queries, want 3", got)
	}
	// Queries older than the arrival clock answer at the arrival clock.
	if got := c.EstimateAt(-5); got != 3 {
		t.Fatalf("estimate %d for a pre-clock query, want 3", got)
	}
}

// TestFutureQueriesAccurateAndHarmless interleaves wall-clock queries ahead
// of the arrival stream with further arrivals: every query must stay within
// the counter's error bound against TSBuffer ground truth advanced to the
// same probe time, and — queries being read-only — the arrival-time
// estimates afterwards must be exactly as accurate as ever.
func TestFutureQueriesAccurateAndHarmless(t *testing.T) {
	const t0 = 64
	rng := xrand.New(5)
	c := NewEps(t0, 0.1)
	truth := window.NewTSBuffer[struct{}](t0)
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		if rng.Uint64n(4) == 0 {
			ts += int64(rng.Uint64n(9))
		}
		c.Observe(ts)
		truth.Observe(struct {
			Value struct{}
			Index uint64
			TS    int64
		}{TS: ts, Index: uint64(i)})
		if i%13 != 0 {
			continue
		}
		probe := ts + int64(rng.Uint64n(2*t0)) // may expire part or all of the window
		probeTruth := window.NewTSBuffer[struct{}](t0)
		for _, e := range truth.Contents() {
			probeTruth.Observe(e)
		}
		probeTruth.AdvanceTo(probe)
		got, want := float64(c.EstimateAt(probe)), float64(probeTruth.Len())
		if want == 0 {
			if got != 0 {
				t.Fatalf("step %d: estimate %.0f at probe %d, want 0", i, got, probe)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 0.1+1e-9 {
			t.Fatalf("step %d: probe estimate %.0f vs true %.0f (rel %.3f)", i, got, want, rel)
		}
	}
}

// TestConcurrentQueries exercises the read path under the race detector:
// with queries read-only, a Counter behind a RWMutex serves concurrent
// EstimateAt callers holding only the read lock while a writer Observes
// under the write lock. Pre-fix this races (and fails under -race): two
// RLock holders both mutated the bucket slice and the clock.
func TestConcurrentQueries(t *testing.T) {
	c := NewEps(256, 0.1)
	var mu sync.RWMutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := int64(r * 100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				c.EstimateAt(probe)
				c.Estimate()
				mu.RUnlock()
				probe += 37
			}
		}(r)
	}
	for ts := int64(0); ts < 20000; ts++ {
		mu.Lock()
		c.Observe(ts)
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}

// TestObserveSteadyStateAllocFree is the regression test for the expire
// reallocation: in steady state (arrivals continually expiring old buckets)
// Observe must not allocate per call — the bucket slice is shifted in
// place. Pre-fix, every expiry-advancing Observe reallocated the slice.
// BENCH_3.json records the benchmark-level before/after.
func TestObserveSteadyStateAllocFree(t *testing.T) {
	c := NewEps(64, 0.1)
	ts := int64(0)
	for i := 0; i < 10000; i++ { // warm up: let the slice capacity peak
		c.Observe(ts)
		ts++
	}
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 100; i++ {
			c.Observe(ts)
			ts++
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady-state Observe allocates: %.2f allocs per 100 arrivals", avg)
	}
}

func TestCounterExpiresToZero(t *testing.T) {
	c := New(10, 4)
	for i := 0; i < 100; i++ {
		c.Observe(0)
	}
	if c.EstimateAt(5) == 0 {
		t.Fatal("active elements vanished early")
	}
	if got := c.EstimateAt(10); got != 0 {
		t.Fatalf("estimate %d after full expiry", got)
	}
	// Still usable after expiry.
	c.Observe(20)
	if c.Estimate() != 1 {
		t.Fatal("counter broken after full expiry")
	}
}

func TestCounterLogarithmicMemory(t *testing.T) {
	c := New(1<<40, 4)
	for i := 0; i < 100000; i++ {
		c.Observe(int64(i))
	}
	// Buckets: at most maxPerSize+1 per size, sizes up to ~n/maxPerSize.
	maxBuckets := (4 + 1) * (int(math.Log2(100000)) + 2)
	if c.Buckets() > maxBuckets {
		t.Fatalf("buckets %d exceed logarithmic bound %d", c.Buckets(), maxBuckets)
	}
	if c.Words() != 2+3*c.Buckets() {
		t.Fatal("words accounting inconsistent")
	}
	if c.MaxWords() < c.Words() {
		t.Fatal("peak below current")
	}
}

func TestCounterMonotonicityPanic(t *testing.T) {
	c := New(10, 4)
	c.Observe(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	c.Observe(4)
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4) },
		func() { New(10, 1) },
		func() { NewEps(10, 0) },
		func() { NewEps(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSizeOracle(t *testing.T) {
	c := New(10, 4)
	oracle := c.SizeOracle()
	if _, ok := oracle(0); ok {
		t.Fatal("oracle nonzero on empty counter")
	}
	for i := 0; i < 5; i++ {
		c.Observe(int64(i))
	}
	n, ok := oracle(4)
	if !ok || n < 4 || n > 6 {
		t.Fatalf("oracle = %v ok=%v, want about 5", n, ok)
	}
}
