package ehist

import (
	"math"
	"testing"

	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func TestCounterExactWhileSmall(t *testing.T) {
	c := New(100, 4)
	if c.Estimate() != 0 {
		t.Fatal("empty counter nonzero")
	}
	for i := 0; i < 4; i++ {
		c.Observe(int64(i))
		// While every bucket has size 1, the estimate is total - 0 = exact.
		if got := c.Estimate(); got != uint64(i+1) {
			t.Fatalf("after %d arrivals estimate %d", i+1, got)
		}
	}
}

func TestCounterRelativeError(t *testing.T) {
	// Steady stream, window t0=1000 ticks, 1 element per tick: true count
	// is min(i+1, 1000). Check the documented bound 1/(2(r-1)).
	for _, r := range []int{2, 4, 8} {
		c := New(1000, r)
		bound := 1.0 / float64(r-1)
		for i := 0; i < 20000; i++ {
			c.Observe(int64(i))
			truth := float64(i + 1)
			if truth > 1000 {
				truth = 1000
			}
			got := float64(c.Estimate())
			if rel := math.Abs(got-truth) / truth; rel > bound+1e-9 {
				t.Fatalf("r=%d step %d: estimate %.0f vs true %.0f (rel %.3f > bound %.3f)",
					r, i, got, truth, rel, bound)
			}
		}
	}
}

func TestCounterBursty(t *testing.T) {
	const t0 = 64
	rng := xrand.New(1)
	c := NewEps(t0, 0.1)
	truth := window.NewTSBuffer[struct{}](t0)
	ts := int64(0)
	for i := 0; i < 30000; i++ {
		if rng.Uint64n(6) == 0 {
			ts += int64(rng.Uint64n(5))
		}
		c.Observe(ts)
		truth.Observe(struct {
			Value struct{}
			Index uint64
			TS    int64
		}{TS: ts, Index: uint64(i)})
		got := float64(c.Estimate())
		want := float64(truth.Len())
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 0.1+1e-9 {
			t.Fatalf("step %d: estimate %.0f vs true %.0f (rel %.3f)", i, got, want, rel)
		}
	}
}

func TestCounterExpiresToZero(t *testing.T) {
	c := New(10, 4)
	for i := 0; i < 100; i++ {
		c.Observe(0)
	}
	if c.EstimateAt(5) == 0 {
		t.Fatal("active elements vanished early")
	}
	if got := c.EstimateAt(10); got != 0 {
		t.Fatalf("estimate %d after full expiry", got)
	}
	// Still usable after expiry.
	c.Observe(20)
	if c.Estimate() != 1 {
		t.Fatal("counter broken after full expiry")
	}
}

func TestCounterLogarithmicMemory(t *testing.T) {
	c := New(1<<40, 4)
	for i := 0; i < 100000; i++ {
		c.Observe(int64(i))
	}
	// Buckets: at most maxPerSize+1 per size, sizes up to ~n/maxPerSize.
	maxBuckets := (4 + 1) * (int(math.Log2(100000)) + 2)
	if c.Buckets() > maxBuckets {
		t.Fatalf("buckets %d exceed logarithmic bound %d", c.Buckets(), maxBuckets)
	}
	if c.Words() != 2+3*c.Buckets() {
		t.Fatal("words accounting inconsistent")
	}
	if c.MaxWords() < c.Words() {
		t.Fatal("peak below current")
	}
}

func TestCounterMonotonicityPanic(t *testing.T) {
	c := New(10, 4)
	c.Observe(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	c.Observe(4)
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4) },
		func() { New(10, 1) },
		func() { NewEps(10, 0) },
		func() { NewEps(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSizeOracle(t *testing.T) {
	c := New(10, 4)
	oracle := c.SizeOracle()
	if _, ok := oracle(0); ok {
		t.Fatal("oracle nonzero on empty counter")
	}
	for i := 0; i < 5; i++ {
		c.Observe(int64(i))
	}
	n, ok := oracle(4)
	if !ok || n < 4 || n > 6 {
		t.Fatalf("oracle = %v ok=%v, want about 5", n, ok)
	}
}
