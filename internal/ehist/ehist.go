// Package ehist implements the exponential-histogram counter of Datar,
// Gionis, Indyk and Motwani ("Maintaining stream statistics over sliding
// windows", SODA 2002) for timestamp-based windows.
//
// The paper under reproduction cites this very result ([31]) for the fact
// that the SIZE of a timestamp window cannot be computed exactly in
// sublinear space — the negative result that motivates "generating implicit
// events". The exponential histogram is the matching positive result: a
// (1 ± ε)-approximate count of the active elements in O(ε⁻¹·log²n) bits.
//
// In this repository the counter serves the Section 5 application layer:
// estimators such as windowed entropy need the window size n(t) as a scale
// factor, which is exact for sequence windows but only approximable for
// timestamp windows. TSWRSource accepts this counter as its size oracle.
//
// Construction: arrivals are grouped into buckets of power-of-two sizes,
// newest first; at most maxPerSize buckets of each size are kept, and
// overflow merges the two OLDEST buckets of a size into one of twice the
// size. Each bucket records the timestamps of both its oldest and newest
// elements: the newest drives expiry (a bucket dies when its newest element
// leaves the window), the oldest detects whether the surviving head bucket
// straddles the window boundary. When it does not straddle, the count is
// exact; when it does, the head contributes half its size and the absolute
// error is at most half the head bucket, giving relative error at most
// 1/(maxPerSize-1).
//
// Queries are READ-ONLY: EstimateAt computes expiry against the query time
// without persisting it, so a wall-clock query may be followed by an
// arrival with a slightly older (but still non-decreasing) timestamp — the
// serving-style read path. Only Observe advances the counter's clock. A
// Counter may therefore serve concurrent EstimateAt callers under a read
// lock; Observe needs exclusive access, like every other mutation in this
// repository.
package ehist

import (
	"slidingsample/internal/window"
)

// bucket is one exponential-histogram bucket.
type bucket struct {
	newTS int64  // timestamp of the bucket's most recent element (expiry)
	oldTS int64  // timestamp of the bucket's oldest element (straddle test)
	size  uint64 // number of elements, a power of two
}

// Counter approximately counts the stream elements whose timestamps are
// still inside a sliding window of horizon t0.
type Counter struct {
	w          window.Timestamp
	maxPerSize int
	buckets    []bucket // oldest first
	now        int64
	started    bool
	maxWords   int
}

// New returns a counter with horizon t0 and relative error at most
// 1/(maxPerSize-1). maxPerSize must be at least 2. For a target ε use
// NewEps.
func New(t0 int64, maxPerSize int) *Counter {
	if t0 <= 0 {
		panic("ehist: New with t0 <= 0")
	}
	if maxPerSize < 2 {
		panic("ehist: New with maxPerSize < 2")
	}
	return &Counter{w: window.Timestamp{T0: t0}, maxPerSize: maxPerSize}
}

// NewEps returns a counter with relative error at most eps.
func NewEps(t0 int64, eps float64) *Counter {
	if eps <= 0 || eps >= 1 {
		panic("ehist: NewEps with eps outside (0,1)")
	}
	return New(t0, int(1/eps)+2)
}

// Observe records one arrival at time ts (non-decreasing).
func (c *Counter) Observe(ts int64) {
	if c.started && ts < c.now {
		panic("ehist: time went backwards")
	}
	c.now = ts
	c.started = true
	c.expire()
	c.buckets = append(c.buckets, bucket{newTS: ts, oldTS: ts, size: 1})
	c.cascade()
	if w := c.Words(); w > c.maxWords {
		c.maxWords = w
	}
}

// cascade merges the two oldest buckets of any size that exceeds
// maxPerSize, rippling upward exactly like a carry chain.
func (c *Counter) cascade() {
	size := uint64(1)
	for {
		first, count := -1, 0
		for i, b := range c.buckets {
			if b.size == size {
				if first < 0 {
					first = i
				}
				count++
			}
		}
		if count <= c.maxPerSize {
			return
		}
		// Merge the two oldest of this size: buckets are kept oldest-first,
		// so they sit at `first` and the next bucket of equal size.
		second := first + 1
		for second < len(c.buckets) && c.buckets[second].size != size {
			second++
		}
		if second >= len(c.buckets) {
			return // cannot happen: count >= 2
		}
		merged := bucket{
			newTS: c.buckets[second].newTS,
			oldTS: c.buckets[first].oldTS,
			size:  size * 2,
		}
		c.buckets = append(c.buckets[:second], c.buckets[second+1:]...)
		c.buckets[first] = merged
		size *= 2
	}
}

// expire drops buckets whose most recent element has left the window. The
// survivors are shifted in place — the slice's capacity is bounded by the
// logarithmic bucket peak, which the word model already charges for — and
// the vacated tail is zeroed so stale bucket copies never linger.
func (c *Counter) expire() {
	i := 0
	for i < len(c.buckets) && c.w.Expired(c.buckets[i].newTS, c.now) {
		i++
	}
	if i > 0 {
		m := copy(c.buckets, c.buckets[i:])
		clear(c.buckets[m:])
		c.buckets = c.buckets[:m]
	}
}

// EstimateAt returns the approximate number of active elements at time now.
// The query is read-only: expiry is computed against the query time without
// persisting it, so the counter's clock — which only Observe advances — is
// never moved by a query, and an arrival with ts < now remains legal
// afterwards. A query older than the latest arrival is answered at the
// arrival clock (time never rewinds). The result is exact whenever the
// oldest surviving bucket lies entirely inside the window (in particular
// while the stream is younger than the window).
func (c *Counter) EstimateAt(now int64) uint64 {
	if !c.started {
		return 0
	}
	if now < c.now {
		now = c.now
	}
	// Buckets are oldest first with non-decreasing newTS, so the dead
	// prefix at query time is found by the same scan expire uses — just
	// without committing it.
	i := 0
	for i < len(c.buckets) && c.w.Expired(c.buckets[i].newTS, now) {
		i++
	}
	if i == len(c.buckets) {
		return 0
	}
	total := uint64(0)
	for _, b := range c.buckets[i:] {
		total += b.size
	}
	if c.w.Active(c.buckets[i].oldTS, now) {
		return total // head bucket fully inside the window: exact
	}
	return total - c.buckets[i].size/2
}

// Estimate returns the approximate count at the latest observed time.
func (c *Counter) Estimate() uint64 { return c.EstimateAt(c.now) }

// Buckets returns the current number of buckets (diagnostics).
func (c *Counter) Buckets() int { return len(c.buckets) }

// SizeOracle adapts the counter to the apps.TSWRSource size-oracle
// signature.
func (c *Counter) SizeOracle() func(now int64) (float64, bool) {
	return func(now int64) (float64, bool) {
		n := c.EstimateAt(now)
		if n == 0 {
			return 0, false
		}
		return float64(n), true
	}
}

// Words implements the DESIGN.md §6 cost model: each bucket stores two
// timestamps and a size (3 words), plus two scalars.
func (c *Counter) Words() int { return 2 + 3*len(c.buckets) }

// MaxWords returns the peak footprint.
func (c *Counter) MaxWords() int { return c.maxWords }
