package slidingsample

// bench_test.go: the E11 systems table plus one timing benchmark per
// experiment workload (E1–E16). Run with:
//
//	go test -bench=. -benchmem
//
// The statistical content of each experiment (memory tables, uniformity
// p-values, estimator errors) is produced by cmd/swbench; these benchmarks
// measure the per-element and per-query costs of exactly the same
// configurations, so DESIGN.md §4 can report both axes.

import (
	"testing"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/parallel"
	"slidingsample/internal/reservoir"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// tsPattern yields a mildly bursty timestamp for arrival i.
func tsAt(i int) int64 { return int64(i / 3) }

// ---------------------------------------------------------------------------
// E1: sequence-based, with replacement
// ---------------------------------------------------------------------------

func BenchmarkE1_SeqWR_Observe(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := core.NewSeqWR[uint64](xrand.New(1), 10_000, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), int64(i))
			}
		})
	}
}

func BenchmarkE1_Chain_Observe(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := baseline.NewChain[uint64](xrand.New(1), 10_000, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), int64(i))
			}
		})
	}
}

func BenchmarkE1_SeqWR_Sample(b *testing.B) {
	s := core.NewSeqWR[uint64](xrand.New(1), 10_000, 16)
	for i := 0; i < 25_000; i++ {
		s.Observe(uint64(i), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Sample(); !ok {
			b.Fatal("no sample")
		}
	}
}

// ---------------------------------------------------------------------------
// E2: sequence-based, without replacement
// ---------------------------------------------------------------------------

func BenchmarkE2_SeqWOR_Observe(b *testing.B) {
	for _, k := range []int{4, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := core.NewSeqWOR[uint64](xrand.New(1), 10_000, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), int64(i))
			}
		})
	}
}

func BenchmarkE2_SeqWOR_Sample(b *testing.B) {
	s := core.NewSeqWOR[uint64](xrand.New(1), 10_000, 64)
	for i := 0; i < 25_000; i++ {
		s.Observe(uint64(i), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Sample(); !ok {
			b.Fatal("no sample")
		}
	}
}

func BenchmarkE2_Oversample_Observe(b *testing.B) {
	s := baseline.NewOversample[uint64](xrand.New(1), 10_000, 64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i), int64(i))
	}
}

// ---------------------------------------------------------------------------
// E3: timestamp-based, with replacement
// ---------------------------------------------------------------------------

func BenchmarkE3_TSWR_Observe(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := core.NewTSWR[uint64](xrand.New(1), 512, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), tsAt(i))
			}
		})
	}
}

func BenchmarkE3_Priority_Observe(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := baseline.NewPriority[uint64](xrand.New(1), 512, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), tsAt(i))
			}
		})
	}
}

func BenchmarkE3_TSWR_Sample(b *testing.B) {
	s := core.NewTSWR[uint64](xrand.New(1), 512, 16)
	for i := 0; i < 100_000; i++ {
		s.Observe(uint64(i), tsAt(i))
	}
	now := tsAt(99_999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SampleAt(now); !ok {
			b.Fatal("no sample")
		}
	}
}

// ---------------------------------------------------------------------------
// E4: the doubling adversary (stress arrival path under huge bursts)
// ---------------------------------------------------------------------------

func BenchmarkE4_TSWR_DoublingAdversary(b *testing.B) {
	adv := stream.NewDoublingArrivals(10, 0)
	s := core.NewTSWR[uint64](xrand.New(1), 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i), adv.Next())
	}
}

// ---------------------------------------------------------------------------
// E5: timestamp-based, without replacement
// ---------------------------------------------------------------------------

func BenchmarkE5_TSWOR_Observe(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := core.NewTSWOR[uint64](xrand.New(1), 512, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), tsAt(i))
			}
		})
	}
}

func BenchmarkE5_Skyband_Observe(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			s := baseline.NewSkyband[uint64](xrand.New(1), 512, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(uint64(i), tsAt(i))
			}
		})
	}
}

func BenchmarkE5_TSWOR_Sample(b *testing.B) {
	s := core.NewTSWOR[uint64](xrand.New(1), 512, 16)
	for i := 0; i < 60_000; i++ {
		s.Observe(uint64(i), tsAt(i))
	}
	now := tsAt(59_999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SampleAt(now); !ok {
			b.Fatal("no sample")
		}
	}
}

// ---------------------------------------------------------------------------
// E6/E7 use the same samplers as above; the public-API wrapper overhead is
// what remains to measure.
// ---------------------------------------------------------------------------

func BenchmarkE6_PublicSequenceWOR_Observe(b *testing.B) {
	s, err := NewSequenceWOR[uint64](10_000, 16, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i))
	}
}

func BenchmarkE7_PublicTimestampWR_Observe(b *testing.B) {
	s, err := NewTimestampWR[uint64](512, 4, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Observe(uint64(i), tsAt(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E8-E10: Section 5 estimators (per-element cost includes the counter layer)
// ---------------------------------------------------------------------------

func BenchmarkE8_Moments_Observe(b *testing.B) {
	r := xrand.New(1)
	est := apps.NewMoments(apps.SeqWRSource(core.NewSeqWR[uint64](r.Split(), 4096, 80)), 2, 16, 5)
	zipf := stream.NewZipfValues(r.Split(), 1.2, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(zipf.Next(), int64(i))
	}
}

func BenchmarkE9_Triangles_Observe(b *testing.B) {
	r := xrand.New(1)
	est := apps.NewTriangles(r.Split(), 512, 128, 1024)
	gen := r.Split()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gen.Uint64n(128)
		c := (a + 1 + gen.Uint64n(126)) % 128
		est.Observe(apps.Edge{U: a, V: c}, int64(i))
	}
}

func BenchmarkE10_Entropy_Observe(b *testing.B) {
	r := xrand.New(1)
	eh := ehist.NewEps(512, 0.05)
	s := core.NewTSWR[uint64](r.Split(), 512, 80)
	est := apps.NewEntropy(apps.TSWRSource(s, eh.SizeOracle()), 16, 5)
	zipf := stream.NewZipfValues(r.Split(), 1.2, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := tsAt(i)
		est.Observe(zipf.Next(), ts)
		eh.Observe(ts)
	}
}

// ---------------------------------------------------------------------------
// E11: substrate ablations — reservoir variants and the full-window strawman
// ---------------------------------------------------------------------------

func BenchmarkE11_ReservoirSingle_Observe(b *testing.B) {
	s := reservoir.NewSingle[uint64](xrand.New(1))
	e := stream.Element[uint64]{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Index = uint64(i)
		s.Observe(e)
	}
}

func BenchmarkE11_ReservoirFastSingle_Observe(b *testing.B) {
	s := reservoir.NewFastSingle[uint64](xrand.New(1))
	e := stream.Element[uint64]{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Index = uint64(i)
		s.Observe(e)
	}
}

func BenchmarkE11_FullWindow_Observe(b *testing.B) {
	s := baseline.NewFullWindowSeq[uint64](xrand.New(1), 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i), int64(i))
	}
}

func BenchmarkE11_Ehist_Observe(b *testing.B) {
	c := ehist.NewEps(512, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(tsAt(i))
	}
}

// ---------------------------------------------------------------------------
// E12: step-biased sampling
// ---------------------------------------------------------------------------

func BenchmarkE12_StepBiased_Observe(b *testing.B) {
	s, err := NewStepBiased[uint64]([]uint64{100, 10_000}, []uint64{1, 1}, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i))
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Ablation: TSWR's shared bucket skeleton vs k independent single-sample
// instances. DESIGN.md calls the sharing out as a design decision: boundaries
// are deterministic, so one skeleton can carry k independent (R,Q) slot
// pairs. The ablation measures what the sharing buys in time and words.
// ---------------------------------------------------------------------------

func BenchmarkAblation_TSWR_SharedSkeleton_k16(b *testing.B) {
	s := core.NewTSWR[uint64](xrand.New(1), 512, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i), tsAt(i))
	}
}

func BenchmarkAblation_TSWR_IndependentInstances_k16(b *testing.B) {
	r := xrand.New(1)
	insts := make([]*core.TSWR[uint64], 16)
	for i := range insts {
		insts[i] = core.NewTSWR[uint64](r.Split(), 512, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range insts {
			s.Observe(uint64(i), tsAt(i))
		}
	}
}

// ---------------------------------------------------------------------------
// Batched ingest: ObserveBatch vs looped Observe on all four core samplers
// (the PR-1 tentpole hot path; BENCH_1.json records a baseline run).
// ---------------------------------------------------------------------------

const batchSize = 256

// feedLoop and feedBatch push b.N elements through a sampler per element and
// in batchSize chunks respectively; the chunk assembly is timed as part of
// the batched path (it is what a real caller pays).
func feedLoop(b *testing.B, s stream.Sampler[uint64], ts func(int) int64) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i), ts(i))
	}
}

func feedBatch(b *testing.B, s stream.Sampler[uint64], ts func(int) int64) {
	buf := make([]stream.Element[uint64], 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		buf = buf[:0]
		for j := 0; j < batchSize && i < b.N; j++ {
			buf = append(buf, stream.Element[uint64]{Value: uint64(i), TS: ts(i)})
			i++
		}
		s.ObserveBatch(buf)
	}
}

func seqTS(int) int64 { return 0 }

func BenchmarkBatch_SeqWR_Loop(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, core.NewSeqWR[uint64](xrand.New(1), 10_000, k), seqTS)
		})
	}
}

func BenchmarkBatch_SeqWR_Batch(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, core.NewSeqWR[uint64](xrand.New(1), 10_000, k), seqTS)
		})
	}
}

func BenchmarkBatch_SeqWOR_Loop(b *testing.B) {
	for _, k := range []int{4, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, core.NewSeqWOR[uint64](xrand.New(1), 10_000, k), seqTS)
		})
	}
}

func BenchmarkBatch_SeqWOR_Batch(b *testing.B) {
	for _, k := range []int{4, 64} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, core.NewSeqWOR[uint64](xrand.New(1), 10_000, k), seqTS)
		})
	}
}

func BenchmarkBatch_TSWR_Loop(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, core.NewTSWR[uint64](xrand.New(1), 512, k), tsAt)
		})
	}
}

func BenchmarkBatch_TSWR_Batch(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, core.NewTSWR[uint64](xrand.New(1), 512, k), tsAt)
		})
	}
}

func BenchmarkBatch_TSWOR_Loop(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, core.NewTSWOR[uint64](xrand.New(1), 512, k), tsAt)
		})
	}
}

func BenchmarkBatch_TSWOR_Batch(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, core.NewTSWOR[uint64](xrand.New(1), 512, k), tsAt)
		})
	}
}

// Weighted substrates (PR-2 tentpole): the skyband walk is inherently per
// element, so Batch vs Loop measures what the locals convention buys.
func benchWeightFn(v uint64) float64 { return float64(v%16) + 1 }

func BenchmarkBatch_WeightedWOR_Loop(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, weighted.NewWOR[uint64](xrand.New(1), 10_000, k, benchWeightFn), seqTS)
		})
	}
}

func BenchmarkBatch_WeightedWOR_Batch(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, weighted.NewWOR[uint64](xrand.New(1), 10_000, k, benchWeightFn), seqTS)
		})
	}
}

func BenchmarkBatch_WeightedWR_Loop(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, weighted.NewWR[uint64](xrand.New(1), 10_000, k, benchWeightFn), seqTS)
		})
	}
}

func BenchmarkBatch_WeightedWR_Batch(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, weighted.NewWR[uint64](xrand.New(1), 10_000, k, benchWeightFn), seqTS)
		})
	}
}

// Weighted timestamp substrates (PR-3 tentpole): the per-element cost adds
// the embedded ehist counter's amortized O(log n) to the skyband walk.
func BenchmarkBatch_WeightedTSWOR_Loop(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, weighted.NewTSWOR[uint64](xrand.New(1), 512, k, 0.05, benchWeightFn), tsAt)
		})
	}
}

func BenchmarkBatch_WeightedTSWOR_Batch(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, weighted.NewTSWOR[uint64](xrand.New(1), 512, k, 0.05, benchWeightFn), tsAt)
		})
	}
}

func BenchmarkBatch_WeightedTSWR_Loop(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedLoop(b, weighted.NewTSWR[uint64](xrand.New(1), 512, k, 0.05, benchWeightFn), tsAt)
		})
	}
}

func BenchmarkBatch_WeightedTSWR_Batch(b *testing.B) {
	for _, k := range []int{1, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			feedBatch(b, weighted.NewTSWR[uint64](xrand.New(1), 512, k, 0.05, benchWeightFn), tsAt)
		})
	}
}

// Sharded ingest: batched dealing amortizes the channel send (one message
// per shard per chunk instead of one per element).
func BenchmarkBatch_ShardedSeqWR_Loop(b *testing.B) {
	s := parallel.NewShardedSeqWR[uint64](xrand.New(1), 1<<16, 4, 16)
	defer s.Close()
	feedLoop(b, s, seqTS)
	b.StopTimer()
	s.Barrier()
}

func BenchmarkBatch_ShardedSeqWR_Batch(b *testing.B) {
	s := parallel.NewShardedSeqWR[uint64](xrand.New(1), 1<<16, 4, 16)
	defer s.Close()
	feedBatch(b, s, seqTS)
	b.StopTimer()
	s.Barrier()
}

// The cross-shard weighting read path: repeated SampleAt at one checkpoint
// (ingest, one Barrier, many queries — the serving cadence). Before the
// PR-4 cache every query re-ran EstimateAt over the ehist buckets and
// allocated a fresh per-shard sizes slice; now the (count, query-time) key
// makes repeat queries hit the cached weights. BENCH_4.json records the
// before/after.
func BenchmarkShardedTSWR_SampleAt(b *testing.B) {
	s := parallel.NewShardedTSWR[uint64](xrand.New(1), 512, 4, 16, 0.05)
	defer s.Close()
	for i := 0; i < 100_000; i++ {
		s.Observe(uint64(i), tsAt(i))
	}
	s.Barrier()
	now := tsAt(99_999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SampleAt(now); !ok {
			b.Fatal("no sample")
		}
	}
}

func BenchmarkShardedTSWOR_SampleAt(b *testing.B) {
	s := parallel.NewShardedTSWOR[uint64](xrand.New(1), 512, 4, 16, 0.05)
	defer s.Close()
	for i := 0; i < 100_000; i++ {
		s.Observe(uint64(i), tsAt(i))
	}
	s.Barrier()
	now := tsAt(99_999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SampleAt(now); !ok {
			b.Fatal("no sample")
		}
	}
}

// The checkpointed query cadence: one Barrier + Sample per batch. This is
// what real consumers of the sharded samplers run (queries require a
// barrier), and it is the cadence the dispatcher's double-buffered batch
// slices make allocation-free.
func BenchmarkBatch_ShardedSeqWR_BatchQuery(b *testing.B) {
	s := parallel.NewShardedSeqWR[uint64](xrand.New(1), 1<<16, 4, 16)
	defer s.Close()
	buf := make([]stream.Element[uint64], 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		buf = buf[:0]
		for j := 0; j < batchSize && i < b.N; j++ {
			buf = append(buf, stream.Element[uint64]{Value: uint64(i)})
			i++
		}
		s.ObserveBatch(buf)
		s.Barrier()
		if _, ok := s.Sample(); !ok {
			b.Fatal("no sample")
		}
	}
}

// Sharded WEIGHTED ingest (PR-4 tentpole): the weight-aware dealing
// computes each element's weight once producer-side — feeding the
// per-shard weight histograms — and ships batch and weights through the
// same double-buffered recycling (BENCH_4.json records the baselines).
func BenchmarkBatch_ShardedWeightedTSWOR_Loop(b *testing.B) {
	s := parallel.NewShardedWeightedTSWOR[uint64](xrand.New(1), 512, 4, 8, 0.05, benchWeightFn)
	defer s.Close()
	feedLoop(b, s, tsAt)
	b.StopTimer()
	s.Barrier()
}

func BenchmarkBatch_ShardedWeightedTSWOR_Batch(b *testing.B) {
	s := parallel.NewShardedWeightedTSWOR[uint64](xrand.New(1), 512, 4, 8, 0.05, benchWeightFn)
	defer s.Close()
	feedBatch(b, s, tsAt)
	b.StopTimer()
	s.Barrier()
}

func BenchmarkBatch_ShardedWeightedTSWR_Loop(b *testing.B) {
	s := parallel.NewShardedWeightedTSWR[uint64](xrand.New(1), 512, 4, 8, 0.05, benchWeightFn)
	defer s.Close()
	feedLoop(b, s, tsAt)
	b.StopTimer()
	s.Barrier()
}

func BenchmarkBatch_ShardedWeightedTSWR_Batch(b *testing.B) {
	s := parallel.NewShardedWeightedTSWR[uint64](xrand.New(1), 512, 4, 8, 0.05, benchWeightFn)
	defer s.Close()
	feedBatch(b, s, tsAt)
	b.StopTimer()
	s.Barrier()
}

// The sharded weighted checkpointed cadence: batch, barrier, merged-WOR
// query. The query-side weight cache keys on (count, query time), so the
// weights recompute once per checkpoint here — the ingest path is what
// this benchmark prices.
func BenchmarkBatch_ShardedWeightedTSWOR_BatchQuery(b *testing.B) {
	s := parallel.NewShardedWeightedTSWOR[uint64](xrand.New(1), 512, 4, 8, 0.05, benchWeightFn)
	defer s.Close()
	buf := make([]stream.Element[uint64], 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		buf = buf[:0]
		for j := 0; j < batchSize && i < b.N; j++ {
			buf = append(buf, stream.Element[uint64]{Value: uint64(i), TS: tsAt(i)})
			i++
		}
		s.ObserveBatch(buf)
		s.Barrier()
		if _, ok := s.Sample(); !ok {
			b.Fatal("no sample")
		}
	}
}
